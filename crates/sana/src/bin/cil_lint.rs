//! `cil-lint` — static diagnostics for CIL programs.
//!
//! ```text
//! cil-lint [--entry NAME] [--races] [--format text|json] [--baseline FILE]
//!          [--write-baseline FILE] [--update-baselines] <file.cil>...
//! ```
//!
//! For each file: compile, run the `sana` lints (unprotected shared
//! accesses, inconsistent lock discipline, static lock-order cycles and
//! inversions, structural IR errors), and print one span-mapped line per
//! diagnostic:
//!
//! ```text
//! examples/cil/figure1.cil:10:13: unprotected-shared-access: #4 `store z` ...
//! ```
//!
//! `--races` switches to the static race-candidate generator: instead of
//! the lock-discipline lints, every statically conflicting access pair that
//! survives the refutation filter is reported as a `may-race` diagnostic —
//! the same candidate set `CandidateSource::Static` feeds to Phase 2.
//!
//! `--format json` emits a JSON array of `{"file","line","col","kind",
//! "message"}` objects on stdout instead of text lines, for tooling.
//!
//! Exit codes (CI treats any non-zero as failure, `-D warnings`-style):
//!
//! - `0` — no diagnostics, or every diagnostic is covered by `--baseline`
//!   (a *stale* baseline entry — more expected than found — is reported as
//!   a note but does not fail, so fixing a race never breaks CI);
//! - `1` — diagnostics beyond the baseline (regressions);
//! - `2` — a file failed to read or compile, or bad usage.
//!
//! A baseline file records the *expected* diagnostic counts as lines of
//! `<count> <file> <kind>`; `--write-baseline FILE` emits the current state
//! to a new file, and `--update-baselines` rewrites the `--baseline` file
//! in place, so known-racy fixtures (the whole point of this suite) stay
//! green while any new diagnostic fails CI until acknowledged.

use std::collections::BTreeMap;
use std::process::ExitCode;

use sana::lint::{lint_named, lint_program, race_candidate_lints, race_candidates_named, Diagnostic};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cil-lint [--entry NAME] [--races] [--format text|json] [--baseline FILE] \
         [--write-baseline FILE] [--update-baselines] <file.cil>..."
    );
    ExitCode::from(2)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", ch as u32)),
            ch => out.push(ch),
        }
    }
    out
}

fn diagnostic_json(file: &str, diagnostic: &Diagnostic) -> String {
    format!(
        "{{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"kind\": \"{}\", \"message\": \"{}\"}}",
        json_escape(file),
        diagnostic.span.line,
        diagnostic.span.col,
        diagnostic.kind.tag(),
        json_escape(&diagnostic.message)
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut entry = "main".to_string();
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut update_baselines = false;
    let mut races = false;
    let mut format = Format::Text;
    let mut files: Vec<String> = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--entry" => match iter.next() {
                Some(name) => entry = name,
                None => return usage(),
            },
            "--baseline" => match iter.next() {
                Some(path) => baseline_path = Some(path),
                None => return usage(),
            },
            "--write-baseline" => match iter.next() {
                Some(path) => write_baseline = Some(path),
                None => return usage(),
            },
            "--update-baselines" => update_baselines = true,
            "--races" => races = true,
            "--format" => match iter.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return usage();
    }
    if update_baselines && baseline_path.is_none() {
        eprintln!("cil-lint: --update-baselines requires --baseline FILE");
        return ExitCode::from(2);
    }
    files.sort();

    let baseline: BTreeMap<(String, String), usize> = match &baseline_path {
        None => BTreeMap::new(),
        Some(path) if update_baselines => {
            // Rewriting from scratch: a missing baseline file is fine.
            match std::fs::read_to_string(path) {
                Ok(text) => parse_baseline(&text),
                Err(_) => BTreeMap::new(),
            }
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => parse_baseline(&text),
            Err(error) => {
                eprintln!("cil-lint: cannot read baseline `{path}`: {error}");
                return ExitCode::from(2);
            }
        },
    };

    let mut observed: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut total = 0usize;
    let mut json_items: Vec<String> = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(error) => {
                eprintln!("cil-lint: cannot read `{path}`: {error}");
                return ExitCode::from(2);
            }
        };
        let program = match cil::compile(&source) {
            Ok(program) => program,
            Err(error) => {
                eprintln!("{path}:{error}");
                return ExitCode::from(2);
            }
        };
        // No such entry proc: analyze from the first procedure so
        // library-style files still get structural checks.
        let diagnostics = if races {
            race_candidates_named(&program, &entry)
                .unwrap_or_else(|| race_candidate_lints(&program, cil::flat::ProcId(0)))
        } else {
            lint_named(&program, &entry)
                .unwrap_or_else(|| lint_program(&program, cil::flat::ProcId(0)))
        };
        for diagnostic in &diagnostics {
            match format {
                Format::Text => println!("{path}:{diagnostic}"),
                Format::Json => json_items.push(diagnostic_json(path, diagnostic)),
            }
            *observed
                .entry((path.clone(), diagnostic.kind.tag().to_string()))
                .or_insert(0) += 1;
            total += 1;
        }
    }
    if format == Format::Json {
        if json_items.is_empty() {
            println!("[]");
        } else {
            println!("[\n  {}\n]", json_items.join(",\n  "));
        }
    }

    let baseline_text = |observed: &BTreeMap<(String, String), usize>| {
        let mut text = String::from(
            "# cil-lint baseline: `<count> <file> <kind>` per line.\n\
             # Regenerate with: cil-lint --update-baselines --baseline <this file> <files>...\n",
        );
        for ((file, kind), count) in observed {
            text.push_str(&format!("{count} {file} {kind}\n"));
        }
        text
    };

    if let Some(path) = write_baseline {
        if let Err(error) = std::fs::write(&path, baseline_text(&observed)) {
            eprintln!("cil-lint: cannot write baseline `{path}`: {error}");
            return ExitCode::from(2);
        }
        println!("cil-lint: wrote baseline `{path}` ({total} diagnostic(s))");
        return ExitCode::SUCCESS;
    }
    if update_baselines {
        let path = baseline_path.expect("checked above");
        if baseline_text(&baseline) == baseline_text(&observed) {
            println!("cil-lint: baseline `{path}` already up to date");
        } else if let Err(error) = std::fs::write(&path, baseline_text(&observed)) {
            eprintln!("cil-lint: cannot write baseline `{path}`: {error}");
            return ExitCode::from(2);
        } else {
            println!("cil-lint: updated baseline `{path}` ({total} diagnostic(s))");
        }
        return ExitCode::SUCCESS;
    }

    // Regression check: only *new* diagnostics fail. A count above the
    // baseline is a regression; a count below it is a stale entry — noted
    // so someone re-baselines, but a fixed race never breaks CI.
    let mut regressions = 0usize;
    let mut stale = 0usize;
    if baseline_path.is_some() {
        let keys: std::collections::BTreeSet<_> =
            observed.keys().chain(baseline.keys()).cloned().collect();
        for key in keys {
            let now = observed.get(&key).copied().unwrap_or(0);
            let expected = baseline.get(&key).copied().unwrap_or(0);
            let (file, kind) = &key;
            if now > expected {
                eprintln!(
                    "cil-lint: {file}: {kind}: expected {expected} diagnostic(s), found {now}"
                );
                regressions += 1;
            } else if now < expected {
                eprintln!(
                    "cil-lint: note: {file}: {kind}: baseline expects {expected} but only \
                     {now} found (stale entry; run --update-baselines)"
                );
                stale += 1;
            }
        }
    }

    if regressions > 0 {
        eprintln!("cil-lint: {regressions} regression(s) against baseline");
        ExitCode::from(1)
    } else if baseline_path.is_none() && total > 0 {
        eprintln!("cil-lint: {total} diagnostic(s)");
        ExitCode::from(1)
    } else {
        if stale > 0 {
            eprintln!("cil-lint: {stale} stale baseline entr(y/ies), exit 0");
        }
        ExitCode::SUCCESS
    }
}

fn parse_baseline(text: &str) -> BTreeMap<(String, String), usize> {
    let mut baseline = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let (Some(count), Some(file), Some(kind)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if let Ok(count) = count.parse::<usize>() {
            baseline.insert((file.to_string(), kind.to_string()), count);
        }
    }
    baseline
}
