//! Flow-insensitive, field-sensitive, Andersen-style interprocedural
//! points-to analysis over the flat CIL IR.
//!
//! Abstract objects are **allocation sites** (`New` / `NewArray`
//! instructions). The analysis assigns every pointer-carrying slot — each
//! `(proc, local)`, each global, each `(site, field)` heap cell, each
//! site's array-element soup, and each procedure's return channel — a
//! [`PtsSet`]: the sites whose objects the slot may hold, plus an `unknown`
//! bit for references the analysis cannot name (entry parameters, loads
//! through `unknown` bases).
//!
//! Constraints are generated once per instruction and solved with a
//! standard worklist: subset edges for copies (`Assign`, global load/store,
//! call/spawn parameter binding, returns) and *complex* constraints for
//! field/element loads and stores, which materialize new subset edges as
//! the base slot's points-to set grows.
//!
//! # `unknown` (⊤) discipline
//!
//! `unknown` is the sound escape hatch, and every client query treats it
//! conservatively: a may-alias check involving `unknown` answers "maybe",
//! a must-singleton check fails, and an escape check answers "escaped".
//! Two flows keep stores sound around it:
//!
//! - a **store through an `unknown` base** could hit any object's field,
//!   so the stored sites are routed into a dedicated [`leaked`] set (they
//!   escape) and the field is marked *tainted* — every load of a tainted
//!   field, from any base, is poisoned with `unknown`;
//! - a **load through an `unknown` base** yields `unknown`.
//!
//! Flow-insensitivity (one set per slot for the whole program) is
//! acceptable here because every client is itself a may/whole-program
//! query: candidate generation wants an over-approximation, escape wants
//! "ever reachable", and the must-lockset pass layers its own
//! flow-sensitive dataflow *on top of* these value sets. See DESIGN.md
//! §13.
//!
//! [`leaked`]: PointsTo::leaked

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use cil::flat::{GlobalId, Instr, InstrId, LocalId, ProcId, PureExpr};
use cil::{Program, Symbol};

use crate::cfg::Cfg;

/// Which allocation sites a slot may point to.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PtsSet {
    /// Possible allocation sites.
    pub sites: BTreeSet<InstrId>,
    /// The slot may also hold references the analysis cannot name
    /// (an entry parameter, or a value loaded through an `unknown` base
    /// or a tainted field).
    pub unknown: bool,
}

impl PtsSet {
    /// The single known site, if this set is a known singleton.
    pub fn singleton(&self) -> Option<InstrId> {
        if self.unknown || self.sites.len() != 1 {
            None
        } else {
            self.sites.iter().next().copied()
        }
    }

    /// May the two sets name a common runtime object? (`unknown` on either
    /// side answers yes.)
    pub fn may_overlap(&self, other: &PtsSet) -> bool {
        self.unknown || other.unknown || self.sites.intersection(&other.sites).next().is_some()
    }

    /// Do the two sets certainly name the *same single* runtime object
    /// from `site`? True only when both are the same known singleton;
    /// whether that site allocates once per run is the caller's
    /// (call-graph) question.
    pub fn must_alias(&self, other: &PtsSet) -> Option<InstrId> {
        match (self.singleton(), other.singleton()) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    pub(crate) fn absorb(&mut self, other: &PtsSet) -> bool {
        let before = (self.sites.len(), self.unknown);
        self.sites.extend(other.sites.iter().copied());
        self.unknown |= other.unknown;
        before != (self.sites.len(), self.unknown)
    }

    pub(crate) fn mark_unknown(&mut self) -> bool {
        let changed = !self.unknown;
        self.unknown = true;
        changed
    }
}

/// A heap cell within an abstract object: a named field or the collapsed
/// array-element soup (index-insensitive).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum HeapKey {
    Field(Symbol),
    Elems,
}

/// The solved points-to facts for one program + entry.
#[derive(Clone, Debug)]
pub struct PointsTo {
    /// Node index base of each proc's locals.
    local_base: Vec<usize>,
    /// Node index of global `g` is `global_base + g`.
    global_base: usize,
    /// Node index of proc `p`'s return channel is `return_base + p`.
    return_base: usize,
    /// Final solution, indexed by node.
    pts: Vec<PtsSet>,
    /// Heap-cell nodes, keyed by (allocation site, cell).
    heap_nodes: BTreeMap<(InstrId, HeapKey), usize>,
    /// Fields some store reached through an `unknown` base: loads of these
    /// yield `unknown` from any base.
    tainted: BTreeSet<HeapKey>,
    /// Sites stored through an `unknown` base — reachable from memory the
    /// analysis cannot name, so escape analysis must treat them as shared.
    leaked: PtsSet,
}

impl PointsTo {
    /// Generates and solves the constraint system for `program` entered at
    /// `entry`.
    pub fn build(program: &Program, cfg: &Cfg, entry: ProcId) -> PointsTo {
        Solver::new(program, cfg, entry).solve()
    }

    /// Sites that may reach local `local` of `proc`.
    pub fn local(&self, proc: ProcId, local: LocalId) -> &PtsSet {
        &self.pts[self.local_base[proc.index()] + local.index()]
    }

    /// Sites that may be stored in `global`.
    pub fn global(&self, global: GlobalId) -> &PtsSet {
        &self.pts[self.global_base + global.index()]
    }

    /// Sites `proc` may return.
    pub fn returned(&self, proc: ProcId) -> &PtsSet {
        &self.pts[self.return_base + proc.index()]
    }

    /// Sites that may be stored in field `field` of objects allocated at
    /// `site` (plus `unknown` if the field is tainted).
    pub fn field(&self, site: InstrId, field: Symbol) -> PtsSet {
        self.heap_cell(site, HeapKey::Field(field))
    }

    /// Sites that may be stored in elements of arrays allocated at `site`.
    pub fn elems(&self, site: InstrId) -> PtsSet {
        self.heap_cell(site, HeapKey::Elems)
    }

    fn heap_cell(&self, site: InstrId, key: HeapKey) -> PtsSet {
        let mut set = self
            .heap_nodes
            .get(&(site, key))
            .map(|&node| self.pts[node].clone())
            .unwrap_or_default();
        if self.tainted.contains(&key) {
            set.mark_unknown();
        }
        set
    }

    /// The value of a pure expression in `proc` (only `Local` operands can
    /// carry references; arithmetic and constants are scalars).
    pub fn expr(&self, proc: ProcId, expr: &PureExpr) -> PtsSet {
        match expr {
            PureExpr::Local(id) => self.local(proc, *id).clone(),
            PureExpr::Const(_)
            | PureExpr::Unary { .. }
            | PureExpr::Binary { .. }
            | PureExpr::Len(_) => PtsSet::default(),
        }
    }

    /// Sites stored through bases the analysis cannot name — conservatively
    /// reachable by any thread.
    pub fn leaked(&self) -> &PtsSet {
        &self.leaked
    }

    /// The heap cells with at least one known inflow, for escape closure:
    /// `(site, contents)` pairs, array elements collapsed per site.
    pub(crate) fn heap_contents(&self, site: InstrId) -> Vec<&PtsSet> {
        self.heap_nodes
            .range((site, HeapKey::Field(Symbol(0)))..=(site, HeapKey::Elems))
            .filter(|((s, _), _)| *s == site)
            .map(|(_, &node)| &self.pts[node])
            .collect()
    }
}

/// The constraint-graph worklist solver.
struct Solver<'p> {
    program: &'p Program,
    cfg: &'p Cfg,
    local_base: Vec<usize>,
    global_base: usize,
    return_base: usize,
    pts: Vec<PtsSet>,
    /// Subset edges `from → to`.
    edges: Vec<BTreeSet<usize>>,
    /// Complex load constraints per base node: `dst ⊇ pts(s).key` for each
    /// `s ∈ pts(base)`.
    loads: Vec<Vec<(HeapKey, usize)>>,
    /// Complex store constraints per base node: `pts(s).key ⊇ src`.
    stores: Vec<Vec<(HeapKey, usize)>>,
    heap_nodes: BTreeMap<(InstrId, HeapKey), usize>,
    /// Load destinations per cell key, so a late taint can poison earlier
    /// loads.
    load_dsts: BTreeMap<HeapKey, Vec<usize>>,
    tainted: BTreeSet<HeapKey>,
    /// Node collecting everything stored through an `unknown` base.
    leaked_node: usize,
    worklist: VecDeque<usize>,
    queued: Vec<bool>,
}

impl<'p> Solver<'p> {
    fn new(program: &'p Program, cfg: &'p Cfg, entry: ProcId) -> Solver<'p> {
        let mut local_base = Vec::with_capacity(program.procs.len());
        let mut next = 0usize;
        for proc in &program.procs {
            local_base.push(next);
            next += proc.local_count();
        }
        let global_base = next;
        next += program.globals.len();
        let return_base = next;
        next += program.procs.len();
        let leaked_node = next;
        next += 1;

        let mut solver = Solver {
            program,
            cfg,
            local_base,
            global_base,
            return_base,
            pts: vec![PtsSet::default(); next],
            edges: vec![BTreeSet::new(); next],
            loads: vec![Vec::new(); next],
            stores: vec![Vec::new(); next],
            heap_nodes: BTreeMap::new(),
            load_dsts: BTreeMap::new(),
            tainted: BTreeSet::new(),
            leaked_node,
            worklist: VecDeque::new(),
            queued: vec![false; next],
        };

        // The harness invokes the entry with no arguments in this suite,
        // but an entry with parameters would receive arbitrary values.
        for position in 0..program.procs[entry.index()].param_count {
            let node = solver.local_node(entry, LocalId(position as u32));
            solver.poison(node);
        }
        solver.generate();
        solver
    }

    fn local_node(&self, proc: ProcId, local: LocalId) -> usize {
        self.local_base[proc.index()] + local.index()
    }

    fn expr_locals(expr: &PureExpr) -> Option<LocalId> {
        match expr {
            PureExpr::Local(id) => Some(*id),
            // Arithmetic never produces references; constants (incl. null)
            // name no allocation site.
            PureExpr::Const(_)
            | PureExpr::Unary { .. }
            | PureExpr::Binary { .. }
            | PureExpr::Len(_) => None,
        }
    }

    fn enqueue(&mut self, node: usize) {
        if !self.queued[node] {
            self.queued[node] = true;
            self.worklist.push_back(node);
        }
    }

    fn seed_site(&mut self, node: usize, site: InstrId) {
        if self.pts[node].sites.insert(site) {
            self.enqueue(node);
        }
    }

    fn poison(&mut self, node: usize) {
        if self.pts[node].mark_unknown() {
            self.enqueue(node);
        }
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if from != to && self.edges[from].insert(to) {
            let flow = self.pts[from].clone();
            if self.pts[to].absorb(&flow) {
                self.enqueue(to);
            }
        }
    }

    fn heap_node(&mut self, site: InstrId, key: HeapKey) -> usize {
        if let Some(&node) = self.heap_nodes.get(&(site, key)) {
            return node;
        }
        let node = self.pts.len();
        self.pts.push(PtsSet::default());
        self.edges.push(BTreeSet::new());
        self.loads.push(Vec::new());
        self.stores.push(Vec::new());
        self.queued.push(false);
        self.heap_nodes.insert((site, key), node);
        node
    }

    fn add_load(&mut self, base: usize, key: HeapKey, dst: usize) {
        self.loads[base].push((key, dst));
        self.load_dsts.entry(key).or_default().push(dst);
        if self.tainted.contains(&key) || self.pts[base].unknown {
            self.poison(dst);
        }
        // Existing base sites produce their edges when `base` is
        // (re)processed below; new registrations trigger it explicitly.
        self.enqueue(base);
    }

    fn add_store(&mut self, base: usize, key: HeapKey, src: usize) {
        self.stores[base].push((key, src));
        self.enqueue(base);
    }

    fn taint(&mut self, key: HeapKey) {
        if self.tainted.insert(key) {
            for dst in self.load_dsts.get(&key).cloned().unwrap_or_default() {
                self.poison(dst);
            }
        }
    }

    /// Scans every instruction once, installing base constraints and
    /// registering complex ones.
    fn generate(&mut self) {
        for (index, instr) in self.program.instrs.iter().enumerate() {
            let id = InstrId(index as u32);
            let proc = self.cfg.owner(id);
            match instr {
                Instr::New { dst, .. } | Instr::NewArray { dst, .. } => {
                    let node = self.local_node(proc, *dst);
                    self.seed_site(node, id);
                }
                Instr::Assign { dst, expr } => {
                    if let Some(src) = Self::expr_locals(expr) {
                        let from = self.local_node(proc, src);
                        let to = self.local_node(proc, *dst);
                        self.add_edge(from, to);
                    }
                }
                Instr::LoadGlobal { dst, global } => {
                    let from = self.global_base + global.index();
                    let to = self.local_node(proc, *dst);
                    self.add_edge(from, to);
                }
                Instr::StoreGlobal { global, src } => {
                    if let Some(local) = Self::expr_locals(src) {
                        let from = self.local_node(proc, local);
                        self.add_edge(from, self.global_base + global.index());
                    }
                }
                Instr::LoadField { dst, obj, field } => {
                    let base = self.local_node(proc, *obj);
                    let to = self.local_node(proc, *dst);
                    self.add_load(base, HeapKey::Field(*field), to);
                }
                Instr::StoreField { obj, field, src } => {
                    if let Some(local) = Self::expr_locals(src) {
                        let base = self.local_node(proc, *obj);
                        let from = self.local_node(proc, local);
                        self.add_store(base, HeapKey::Field(*field), from);
                    }
                }
                Instr::LoadElem { dst, arr, .. } => {
                    let base = self.local_node(proc, *arr);
                    let to = self.local_node(proc, *dst);
                    self.add_load(base, HeapKey::Elems, to);
                }
                Instr::StoreElem { arr, src, .. } => {
                    if let Some(local) = Self::expr_locals(src) {
                        let base = self.local_node(proc, *arr);
                        let from = self.local_node(proc, local);
                        self.add_store(base, HeapKey::Elems, from);
                    }
                }
                Instr::Call { dst, proc: callee, args } => {
                    self.bind_args(proc, *callee, args);
                    if let Some(dst) = dst {
                        let from = self.return_base + callee.index();
                        let to = self.local_node(proc, *dst);
                        self.add_edge(from, to);
                    }
                }
                Instr::Spawn { proc: callee, args, .. } => {
                    // Thread handles are opaque; the spawn's dst slot gains
                    // no allocation site.
                    self.bind_args(proc, *callee, args);
                }
                Instr::Return { value: Some(value) } => {
                    if let Some(local) = Self::expr_locals(value) {
                        let from = self.local_node(proc, local);
                        self.add_edge(from, self.return_base + proc.index());
                    }
                }
                _ => {}
            }
        }
    }

    fn bind_args(&mut self, caller: ProcId, callee: ProcId, args: &[PureExpr]) {
        for (position, arg) in args.iter().enumerate() {
            if let Some(local) = Self::expr_locals(arg) {
                let from = self.local_node(caller, local);
                let to = self.local_node(callee, LocalId(position as u32));
                self.add_edge(from, to);
            }
        }
    }

    /// Propagates to fixpoint: drains the worklist, materializing complex
    /// edges as base sets grow and re-propagating along subset edges.
    fn solve(mut self) -> PointsTo {
        while let Some(node) = self.worklist.pop_front() {
            self.queued[node] = false;
            let set = self.pts[node].clone();

            // Complex constraints where `node` is the base: each site in
            // its set materializes load/store edges (idempotent).
            for (key, dst) in self.loads[node].clone() {
                for &site in &set.sites {
                    let cell = self.heap_node(site, key);
                    self.add_edge(cell, dst);
                }
                if set.unknown || self.tainted.contains(&key) {
                    self.poison(dst);
                }
            }
            for (key, src) in self.stores[node].clone() {
                for &site in &set.sites {
                    let cell = self.heap_node(site, key);
                    self.add_edge(src, cell);
                }
                if set.unknown {
                    // The base could be any object: the stored sites leak
                    // and every load of this cell kind is poisoned.
                    self.add_edge(src, self.leaked_node);
                    self.taint(key);
                }
            }

            // Simple subset edges out of `node`.
            for to in self.edges[node].clone() {
                if self.pts[to].absorb(&set) {
                    self.enqueue(to);
                }
            }
        }

        let leaked = self.pts[self.leaked_node].clone();
        PointsTo {
            local_base: self.local_base,
            global_base: self.global_base,
            return_base: self.return_base,
            pts: self.pts,
            heap_nodes: self.heap_nodes,
            tainted: self.tainted,
            leaked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(source: &str) -> (Program, Cfg, PointsTo) {
        let program = cil::compile(source).unwrap();
        let cfg = Cfg::build(&program);
        let entry = program.proc_named("main").unwrap();
        let pts = PointsTo::build(&program, &cfg, entry);
        (program, cfg, pts)
    }

    /// The local slot written by the tagged instruction.
    fn slot_of(program: &Program, cfg: &Cfg, tag: &str) -> (ProcId, LocalId) {
        let id = program.tagged_access(tag);
        let proc = cfg.owner(id);
        let local = match program.instr(id) {
            Instr::LoadField { dst, .. }
            | Instr::LoadElem { dst, .. }
            | Instr::LoadGlobal { dst, .. } => *dst,
            other => panic!("tag `{tag}` is not a load: {other:?}"),
        };
        (proc, local)
    }

    fn alloc_sites(program: &Program) -> Vec<InstrId> {
        program
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, instr)| matches!(instr, Instr::New { .. } | Instr::NewArray { .. }))
            .map(|(index, _)| InstrId(index as u32))
            .collect()
    }

    #[test]
    fn field_load_resolves_to_stored_site() {
        let (program, cfg, pts) = build(
            r#"
            class Box { inner }
            class Point { x }
            global b;
            proc main() {
                b = new Box;
                var p = new Point;
                b.inner = p;
                var q = b;
                @load var r = q.inner;
                r.x = 1;
            }
            "#,
        );
        let sites = alloc_sites(&program);
        let (proc, local) = slot_of(&program, &cfg, "load");
        let set = pts.local(proc, local);
        // `r` resolves to exactly the Point allocation, without unknown.
        assert!(!set.unknown, "{set:?}");
        assert_eq!(set.singleton(), Some(sites[1]));
    }

    #[test]
    fn interprocedural_flow_through_call_and_return() {
        let (program, cfg, pts) = build(
            r#"
            class Point { x }
            proc id(p) { return p; }
            proc main() {
                var a = new Point;
                var b = id(a);
                @load var v = b.x;
                print v;
            }
            "#,
        );
        let sites = alloc_sites(&program);
        let id_proc = program.proc_named("id").unwrap();
        assert_eq!(pts.returned(id_proc).singleton(), Some(sites[0]));
        // The base of the tagged load is `b`, which holds the same site.
        let load = program.tagged_access("load");
        let base = match program.instr(load) {
            Instr::LoadField { obj, .. } => *obj,
            _ => unreachable!(),
        };
        assert_eq!(pts.local(cfg.owner(load), base).singleton(), Some(sites[0]));
    }

    #[test]
    fn spawn_binds_arguments_to_thread_params() {
        let (program, cfg, pts) = build(
            r#"
            class Point { x }
            proc worker(p) { p.x = 1; }
            proc main() {
                var a = new Point;
                var t = spawn worker(a);
                join t;
            }
            "#,
        );
        let sites = alloc_sites(&program);
        let worker = program.proc_named("worker").unwrap();
        assert_eq!(pts.local(worker, LocalId(0)).singleton(), Some(sites[0]));
        // The spawn handle itself is opaque: no sites, not unknown.
        let (spawn_id, handle_slot) = program
            .instrs
            .iter()
            .enumerate()
            .find_map(|(index, instr)| match instr {
                Instr::Spawn { dst: Some(dst), .. } => Some((InstrId(index as u32), *dst)),
                _ => None,
            })
            .unwrap();
        let handle = pts.local(cfg.owner(spawn_id), handle_slot);
        assert!(handle.sites.is_empty() && !handle.unknown, "{handle:?}");
    }

    #[test]
    fn two_stores_merge_in_the_field_cell() {
        let (program, cfg, pts) = build(
            r#"
            class Box { inner }
            class Point { x }
            global flag = false;
            proc main() {
                var b = new Box;
                var p = new Point;
                var q = new Point;
                if (flag) { b.inner = p; } else { b.inner = q; }
                var f = flag;
                @load var r = b.inner;
                print f;
            }
            "#,
        );
        let sites = alloc_sites(&program);
        let (proc, local) = slot_of(&program, &cfg, "load");
        let set = pts.local(proc, local);
        assert!(!set.unknown);
        assert_eq!(
            set.sites,
            BTreeSet::from([sites[1], sites[2]]),
            "both Point sites reach the load"
        );
        assert_eq!(set.singleton(), None);
    }

    #[test]
    fn store_through_unknown_base_taints_and_leaks() {
        let (program, cfg, pts) = build(
            r#"
            class Box { inner }
            class Point { x }
            proc main(mystery) {
                var p = new Point;
                mystery.inner = p;
                var b = new Box;
                @load var r = b.inner;
                print 0;
            }
            "#,
        );
        let sites = alloc_sites(&program);
        // `p` was stored through an entry-parameter base: it leaks…
        assert!(pts.leaked().sites.contains(&sites[0]));
        // …and loads of `inner` from *any* base are poisoned, because the
        // unknown base might alias them.
        let (proc, local) = slot_of(&program, &cfg, "load");
        assert!(pts.local(proc, local).unknown);
    }

    #[test]
    fn array_elements_collapse_per_site() {
        let (program, cfg, pts) = build(
            r#"
            class Point { x }
            proc main() {
                var a = new [4];
                var p = new Point;
                a[0] = p;
                @load var r = a[3];
                r.x = 1;
            }
            "#,
        );
        let sites = alloc_sites(&program);
        let (proc, local) = slot_of(&program, &cfg, "load");
        // Index-insensitive: the element soup holds the Point site.
        assert_eq!(pts.local(proc, local).singleton(), Some(sites[1]));
        assert_eq!(pts.elems(sites[0]).singleton(), Some(sites[1]));
    }

    #[test]
    fn may_overlap_and_must_alias_queries() {
        let a = PtsSet {
            sites: BTreeSet::from([InstrId(1)]),
            unknown: false,
        };
        let b = PtsSet {
            sites: BTreeSet::from([InstrId(1)]),
            unknown: false,
        };
        let c = PtsSet {
            sites: BTreeSet::from([InstrId(2)]),
            unknown: false,
        };
        let top = PtsSet {
            sites: BTreeSet::new(),
            unknown: true,
        };
        assert!(a.may_overlap(&b));
        assert!(!a.may_overlap(&c));
        assert!(a.may_overlap(&top), "unknown may overlap anything");
        assert_eq!(a.must_alias(&b), Some(InstrId(1)));
        assert_eq!(a.must_alias(&c), None);
        assert_eq!(a.must_alias(&top), None, "unknown is never a must");
    }
}
