//! The standalone static race-candidate generator — Phase 1 without a
//! profiling run.
//!
//! The paper's Phase 1 is a *dynamic* hybrid detector: it can only propose
//! pairs the profiling execution happened to reach. This module enumerates
//! every pair of shared-memory accesses that the static analyses cannot
//! prove race-free — may-aliasing locations, at least one write,
//! MHP-possible, no common must-lock, neither side thread-confined — as an
//! over-approximating candidate set. Because the conditions are exactly the
//! negation of [`StaticRaceFilter::refute`] (plus the conflict test), the
//! generated set is closed under the filter: a generated candidate is never
//! pruned by the same filter, and every dynamically confirmable race is
//! statically generated (the recall-=-100% property the `static_gen` bench
//! gates on).

use std::collections::BTreeSet;

use cil::flat::ProcId;
use cil::Program;
use detector::RacePair;

use crate::filter::{PruneReason, StaticRaceFilter};

/// How the enumeration was narrowed, for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CandidateStats {
    /// Shared-memory access instructions examined.
    pub accesses: usize,
    /// Ordered pairs with a may-alias conflict (≥ 1 write).
    pub conflicting: usize,
    /// Conflicting pairs refuted by spawn/join ordering.
    pub refuted_mhp: usize,
    /// Conflicting pairs refuted by a common allocate-once must-lock.
    pub refuted_common_lock: usize,
    /// Conflicting pairs refuted by thread confinement.
    pub refuted_confined: usize,
    /// Conflicting pairs refuted by provably non-aliasing footprints.
    /// Structurally zero here: the conflict test and the footprint
    /// refutation are the same [`StaticRaceFilter::may_alias`] predicate,
    /// so a non-aliasing pair is never counted as conflicting. Kept so the
    /// stats stay exhaustive over [`PruneReason`].
    pub refuted_footprint: usize,
}

impl CandidateStats {
    /// Total refuted conflicting pairs.
    pub fn refuted(&self) -> usize {
        self.refuted_mhp + self.refuted_common_lock + self.refuted_confined
            + self.refuted_footprint
    }
}

/// The generated candidate set plus enumeration statistics.
#[derive(Clone, Debug)]
pub struct StaticCandidateReport {
    /// Surviving pairs, sorted and deduplicated (includes self-pairs: a
    /// statement racing with another instance of itself).
    pub candidates: Vec<RacePair>,
    /// How the access-pair space was narrowed.
    pub stats: CandidateStats,
}

impl StaticCandidateReport {
    /// Is `pair` in the generated set?
    pub fn contains(&self, pair: &RacePair) -> bool {
        self.candidates.binary_search(pair).is_ok()
    }
}

/// Enumerates all statically conflicting access pairs the filter cannot
/// refute.
pub fn generate(program: &Program, filter: &StaticRaceFilter) -> StaticCandidateReport {
    // The access universe and the write test come from the bytecode
    // image's footprint table — the same per-pc view the dynamic
    // would-it-race query resolves — so Phase 1 and Phase 2 agree on
    // "what does this statement touch" by construction.
    let image = program.bytecode();
    let accesses: Vec<_> = image.memory_access_pcs().collect();
    let writes = |pc| image.accesses_of(pc).iter().any(|access| access.is_write);
    let mut stats = CandidateStats {
        accesses: accesses.len(),
        ..CandidateStats::default()
    };
    let mut candidates: BTreeSet<RacePair> = BTreeSet::new();
    for (position, &a) in accesses.iter().enumerate() {
        for &b in &accesses[position..] {
            if (!writes(a) && !writes(b)) || !filter.may_alias(program, a, b) {
                continue;
            }
            stats.conflicting += 1;
            let pair = RacePair::new(a, b);
            match filter.refute(program, &pair) {
                None => {
                    candidates.insert(pair);
                }
                Some(PruneReason::MhpImpossible) => stats.refuted_mhp += 1,
                Some(PruneReason::CommonLock) => stats.refuted_common_lock += 1,
                Some(PruneReason::ThreadConfined) => stats.refuted_confined += 1,
                Some(PruneReason::FootprintNoAlias) => stats.refuted_footprint += 1,
            }
        }
    }
    StaticCandidateReport {
        candidates: candidates.into_iter().collect(),
        stats,
    }
}

/// Builds the filter and generates candidates for `program` entered at
/// `entry`.
pub fn generate_for_entry(program: &Program, entry: ProcId) -> StaticCandidateReport {
    let filter = StaticRaceFilter::build(program, entry);
    generate(program, &filter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_for(source: &str) -> (Program, StaticCandidateReport) {
        let program = cil::compile(source).unwrap();
        let entry = program.proc_named("main").unwrap();
        let report = generate_for_entry(&program, entry);
        (program, report)
    }

    #[test]
    fn racy_pair_is_generated_and_ordered_pairs_are_not() {
        let (program, report) = report_for(
            r#"
            global x = 0;
            proc worker() { @w x = 1; }
            proc main() {
                @init x = 5;
                var t = spawn worker();
                @m x = 2;
                join t;
                @after var a = x;
            }
            "#,
        );
        let at = |tag: &str| program.tagged_access(tag);
        assert!(report.contains(&RacePair::new(at("w"), at("m"))));
        assert!(!report.contains(&RacePair::new(at("init"), at("w"))));
        assert!(!report.contains(&RacePair::new(at("after"), at("w"))));
        assert!(report.stats.refuted_mhp > 0);
    }

    #[test]
    fn read_read_pairs_are_not_conflicts() {
        let (program, report) = report_for(
            r#"
            global x = 0;
            proc worker() { @r1 var a = x; print a; }
            proc main() {
                var t = spawn worker();
                @r2 var b = x;
                join t;
                print b;
            }
            "#,
        );
        let pair = RacePair::new(
            program.tagged_access("r1"),
            program.tagged_access("r2"),
        );
        assert!(!report.contains(&pair));
    }

    #[test]
    fn self_pair_is_generated_for_multi_instance_statements() {
        let (program, report) = report_for(
            r#"
            global x = 0;
            proc worker() { @w x = 1; }
            proc main() {
                var t1 = spawn worker();
                var t2 = spawn worker();
                join t1;
                join t2;
            }
            "#,
        );
        let w = program.tagged_access("w");
        assert!(report.contains(&RacePair::new(w, w)));
    }

    #[test]
    fn distinct_constant_indices_are_not_conflicts() {
        let (program, report) = report_for(
            r#"
            global arr;
            proc worker() {
                var a = arr;
                @w0 a[0] = 1;
                @w1 a[1] = 2;
            }
            proc main() {
                arr = new [4];
                var a = arr;
                var t = spawn worker();
                @m0 a[0] = 3;
                join t;
            }
            "#,
        );
        let at = |tag: &str| program.tagged_access(tag);
        // Same constant cell across threads: a real candidate.
        assert!(report.contains(&RacePair::new(at("w0"), at("m0"))));
        // Distinct constant cells: not even a conflict, so never generated.
        assert!(!report.contains(&RacePair::new(at("w1"), at("m0"))));
    }

    #[test]
    fn generated_set_is_closed_under_the_filter() {
        let (program, report) = report_for(
            r#"
            class Lock { }
            global l;
            global x = 0;
            global y = 0;
            proc worker() {
                sync (l) { x = 1; }
                y = 1;
            }
            proc main() {
                l = new Lock;
                var t = spawn worker();
                sync (l) { x = 2; }
                y = 2;
                join t;
            }
            "#,
        );
        let entry = program.proc_named("main").unwrap();
        let filter = StaticRaceFilter::build(&program, entry);
        for pair in &report.candidates {
            assert_eq!(filter.refute(&program, pair), None, "{pair:?}");
        }
        assert!(report.stats.refuted_common_lock > 0);
    }
}
