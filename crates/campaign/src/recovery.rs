//! Startup recovery scan: sideline what a crash tore, sweep what it left.
//!
//! Every campaign start walks its durable state *before* trusting any of
//! it. Three things can be on disk after a kill:
//!
//! 1. A stale `*.tmp` staging file — the crash hit between temp-file write
//!    and rename. The published file is intact; the temp file is garbage
//!    and removed.
//! 2. A torn or corrupt published file — short write plus crash, or disk
//!    corruption. The CRC check ([`crate::durable::unseal`]) catches it;
//!    the file is renamed to `<name>.corrupt-N` (never deleted — it is
//!    evidence) and the campaign redoes the lost pairs deterministically.
//! 3. Healthy files, which load normally.
//!
//! Nothing in this module panics on bad input: a corrupt file is an
//! *expected* input after a crash, and the whole point of the campaign's
//! durability story is that it degrades to redone work, not to a wedged
//! run.

use crate::artifact::FailureArtifact;
use crate::checkpoint::Checkpoint;
use crate::durable;
use crate::ArtifactError;
use std::path::{Path, PathBuf};

/// What the recovery scan did to one file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// A torn/corrupt file was renamed to `<name>.corrupt-N`.
    SidelinedCorrupt,
    /// A stale `*.tmp` staging file was removed.
    RemovedStaleTmp,
}

/// One recovery decision, recorded in the [`crate::CampaignReport`] so a
/// resumed run says what it cleaned up instead of doing it silently.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// The file acted on (the original path, pre-sideline).
    pub path: PathBuf,
    /// What was done.
    pub action: RecoveryAction,
    /// Why — the load error for sidelined files.
    pub reason: String,
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.action {
            RecoveryAction::SidelinedCorrupt => {
                write!(f, "sidelined corrupt {}: {}", self.path.display(), self.reason)
            }
            RecoveryAction::RemovedStaleTmp => {
                write!(f, "removed stale temp file {}", self.path.display())
            }
        }
    }
}

/// Renames `path` to the first free `<name>.corrupt-N`, preserving the
/// corrupt bytes for post-mortem instead of deleting them.
///
/// # Errors
///
/// Returns the rename error if every attempt fails.
pub fn sideline(path: &Path) -> std::io::Result<PathBuf> {
    let mut error = None;
    for n in 0..1000u32 {
        let mut name = path
            .file_name()
            .map(|name| name.to_os_string())
            .unwrap_or_default();
        name.push(format!(".corrupt-{n}"));
        let target = path.with_file_name(name);
        if target.exists() {
            continue;
        }
        match std::fs::rename(path, &target) {
            Ok(()) => return Ok(target),
            Err(e) => error = Some(e),
        }
    }
    Err(error.unwrap_or_else(|| std::io::Error::other("no free .corrupt-N name")))
}

/// Removes the staging temp file for `path`, if a crash left one behind.
pub fn sweep_tmp(path: &Path, events: &mut Vec<RecoveryEvent>) {
    let tmp = durable::tmp_path(path);
    if tmp.exists() && std::fs::remove_file(&tmp).is_ok() {
        events.push(RecoveryEvent {
            path: tmp,
            action: RecoveryAction::RemovedStaleTmp,
            reason: "crash between staging write and rename".to_owned(),
        });
    }
}

/// Loads the checkpoint at `path`, sidelining it (and returning `None`) if
/// it is torn or corrupt. A missing file is simply `None` with no event.
pub fn recover_checkpoint(path: &Path, events: &mut Vec<RecoveryEvent>) -> Option<Checkpoint> {
    sweep_tmp(path, events);
    if !path.exists() {
        return None;
    }
    match Checkpoint::load(path) {
        Ok(checkpoint) => Some(checkpoint),
        Err(error) => {
            if sideline(path).is_ok() {
                events.push(RecoveryEvent {
                    path: path.to_owned(),
                    action: RecoveryAction::SidelinedCorrupt,
                    reason: error.to_string(),
                });
            }
            None
        }
    }
}

/// Scans an artifact directory: removes stale `*.tmp` staging files and
/// sidelines artifacts that no longer load (torn writes, bit flips).
/// Artifacts from an unreadable *future* format version are left alone —
/// they are not corrupt, this build is just old.
pub fn scan_artifact_dir(dir: &Path, events: &mut Vec<RecoveryEvent>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.ends_with(".tmp") {
            if std::fs::remove_file(&path).is_ok() {
                events.push(RecoveryEvent {
                    path,
                    action: RecoveryAction::RemovedStaleTmp,
                    reason: "crash between staging write and rename".to_owned(),
                });
            }
            continue;
        }
        if !name.ends_with(".json") {
            continue;
        }
        match FailureArtifact::load(&path) {
            Ok(_) => {}
            Err(ArtifactError::VersionMismatch { .. }) => {}
            Err(error) => {
                if sideline(&path).is_ok() {
                    events.push(RecoveryEvent {
                        path,
                        action: RecoveryAction::SidelinedCorrupt,
                        reason: error.to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("recovery-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stale_tmp_is_swept() {
        let dir = scratch("tmp");
        let path = dir.join("state.json");
        std::fs::write(durable::tmp_path(&path), b"half a checkpo").unwrap();
        let mut events = Vec::new();
        assert!(recover_checkpoint(&path, &mut events).is_none());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].action, RecoveryAction::RemovedStaleTmp);
        assert!(!durable::tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_sidelined_not_panicking() {
        let dir = scratch("sideline");
        let path = dir.join("state.json");
        std::fs::write(&path, "{\"format_version\": 3, \"tr").unwrap();
        let mut events = Vec::new();
        assert!(recover_checkpoint(&path, &mut events).is_none());
        assert!(!path.exists(), "corrupt file moved aside");
        assert!(path.with_file_name("state.json.corrupt-0").exists());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].action, RecoveryAction::SidelinedCorrupt);
        // A second corrupt file gets the next free suffix.
        std::fs::write(&path, "also garbage").unwrap();
        let mut events = Vec::new();
        assert!(recover_checkpoint(&path, &mut events).is_none());
        assert!(path.with_file_name("state.json.corrupt-1").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
