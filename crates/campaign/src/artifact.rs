//! Self-contained failure repro artifacts.
//!
//! When a trial fails — panics, blows its step budget, misses its deadline,
//! or poisons the engine — the campaign persists everything needed to
//! replay it: the target pair, the full [`FuzzConfig`] including the seed,
//! and a digest of the program so a stale artifact is rejected instead of
//! silently replaying against the wrong binary. Replay needs no event log
//! (paper §2.2: the execution is a pure function of program, race set, and
//! seed), so the artifact is a few hundred bytes of JSON.

use crate::durable;
use crate::json::{self, Json};
use detector::RacePair;
use racefuzzer::{FuzzConfig, Provenance};
use std::path::Path;
use std::time::Duration;

/// Artifact/checkpoint format version, bumped on incompatible change.
/// Version 2: structured quarantine reasons (`reason` tag + `detail`) and
/// the per-job `soundness_bugs` list.
/// Version 3: CRC-32 footer on every durable document (torn-write
/// detection), the `max_heap_cells` replay knob, per-report
/// `memory_trials`, and the `worker_loss` failure kind. Still v3: the
/// optional `engine` replay knob (absent = `bytecode`) — older readers
/// ignore it, so no bump.
pub const FORMAT_VERSION: u64 = 3;

/// Oldest format version this build still reads. Version 2 documents have
/// no CRC footer and no memory-budget fields; they load with those fields
/// defaulted, so a committed v2 checkpoint resumes under this build.
pub const MIN_READ_VERSION: u64 = 2;

pub(crate) fn check_version(version: u64) -> Result<(), ArtifactError> {
    if (MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
        Ok(())
    } else {
        Err(ArtifactError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        })
    }
}

/// Unseals a durable document and enforces the framing rule: format v3+
/// documents *must* carry a valid CRC footer — a v3 body without one is a
/// torn write that happened to truncate at a JSON boundary, not a legacy
/// file.
///
/// Returns the parsed JSON and its claimed `format_version`.
pub(crate) fn unseal_document(text: &str) -> Result<(Json, u64), ArtifactError> {
    let unsealed = durable::unseal(text).map_err(ArtifactError::Malformed)?;
    let value = json::parse(unsealed.body())
        .map_err(|error| ArtifactError::Malformed(error.to_string()))?;
    let version = value
        .get("format_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| ArtifactError::Malformed("missing format_version".into()))?;
    if version >= 3 && matches!(unsealed, durable::Unsealed::Legacy(_)) {
        return Err(ArtifactError::Malformed(format!(
            "format v{version} document has no CRC footer (torn write?)"
        )));
    }
    Ok((value, version))
}

/// FNV-1a 64-bit digest of a compiled program's code.
///
/// Hashes procedure names and boundaries plus the debug rendering of every
/// instruction — enough to change whenever the compiled code changes, while
/// ignoring incidental state like interner contents for unused names.
pub fn program_digest(program: &cil::Program) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for proc in &program.procs {
        eat(program.name(proc.name).as_bytes());
        eat(&proc.entry.0.to_le_bytes());
        eat(&proc.end.0.to_le_bytes());
        eat(&(proc.param_count as u64).to_le_bytes());
    }
    for instr in &program.instrs {
        eat(format!("{instr:?}").as_bytes());
        eat(b";");
    }
    hash
}

/// Why a trial failed (harness failures, not program-under-test bugs —
/// deadlocks and uncaught exceptions are *results*, recorded in the
/// [`racefuzzer::PairReport`], not failures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The trial panicked; the payload is the panic message.
    Panic(String),
    /// The trial hit its step budget ([`FuzzConfig::max_steps`]).
    StepBudget,
    /// The trial hit its wall-clock deadline ([`FuzzConfig::wall_clock`]).
    Deadline,
    /// The interpreter detected an internal invariant violation; the
    /// payload is the rendered [`interp::ExecError`].
    EngineError(String),
    /// The worker thread running the trial died without delivering a
    /// result (parallel campaigns only); the payload describes what the
    /// commit thread observed. The pair itself may be innocent — the
    /// failure is attributed so the campaign can keep committing instead
    /// of hanging on a result that will never arrive.
    WorkerLoss(String),
}

impl FailureKind {
    /// Stable tag used in artifacts and quarantine reasons.
    pub fn tag(&self) -> &'static str {
        match self {
            FailureKind::Panic(_) => "panic",
            FailureKind::StepBudget => "step_budget",
            FailureKind::Deadline => "deadline",
            FailureKind::EngineError(_) => "engine_error",
            FailureKind::WorkerLoss(_) => "worker_loss",
        }
    }

    /// Message payload, if the kind carries one.
    pub fn message(&self) -> Option<&str> {
        match self {
            FailureKind::Panic(message)
            | FailureKind::EngineError(message)
            | FailureKind::WorkerLoss(message) => Some(message.as_str()),
            _ => None,
        }
    }

    /// `true` if retrying with a larger step budget could plausibly help.
    pub fn is_budget_related(&self) -> bool {
        matches!(self, FailureKind::StepBudget | FailureKind::Deadline)
    }

    pub(crate) fn from_parts(tag: &str, message: Option<&str>) -> Option<FailureKind> {
        match tag {
            "panic" => Some(FailureKind::Panic(message.unwrap_or("").to_owned())),
            "step_budget" => Some(FailureKind::StepBudget),
            "deadline" => Some(FailureKind::Deadline),
            "engine_error" => Some(FailureKind::EngineError(
                message.unwrap_or("").to_owned(),
            )),
            "worker_loss" => Some(FailureKind::WorkerLoss(
                message.unwrap_or("").to_owned(),
            )),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.message() {
            Some(message) => write!(f, "{}: {message}", self.tag()),
            None => f.write_str(self.tag()),
        }
    }
}

/// One trial failure, as observed by the campaign driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialFailure {
    /// The pair whose trial failed.
    pub pair: RacePair,
    /// The failing trial's seed.
    pub seed: u64,
    /// 1-based attempt number (first run = 1, first retry = 2, …).
    pub attempt: u32,
    /// The step budget in force when the failure happened.
    pub step_budget: u64,
    /// What happened.
    pub kind: FailureKind,
}

/// Everything needed to replay one failed trial, serializable to JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureArtifact {
    /// Campaign job name (e.g. the workload name).
    pub job: String,
    /// Entry procedure.
    pub entry: String,
    /// [`program_digest`] of the program the failure was observed on.
    pub program_digest: u64,
    /// The target pair.
    pub pair: RacePair,
    /// The failing seed.
    pub seed: u64,
    /// Attempt number at which this failure was recorded.
    pub attempt: u32,
    /// What happened.
    pub kind: FailureKind,
    /// Scheduler configuration of the failing trial. `seed` and the step
    /// budget live here too; the artifact replays with `wall_clock = None`
    /// (machine-dependent; see [`FuzzConfig::wall_clock`]) — the original
    /// value is preserved in `wall_clock_ms` for the record.
    pub max_steps: u64,
    /// [`FuzzConfig::postpone_limit`] of the failing trial.
    pub postpone_limit: u64,
    /// [`FuzzConfig::location_precise`] of the failing trial.
    pub location_precise: bool,
    /// [`FuzzConfig::switch_only_at_sync`] of the failing trial.
    pub switch_only_at_sync: bool,
    /// Original wall-clock budget in milliseconds, if any.
    pub wall_clock_ms: Option<u64>,
    /// [`FuzzConfig::max_heap_cells`] of the failing trial (absent in
    /// format v2 artifacts, which predate the heap budget).
    pub max_heap_cells: Option<u64>,
    /// [`FuzzConfig::engine`] of the failing trial, so an interpreter bug
    /// in one engine replays under that engine. Artifacts that predate the
    /// knob load as [`interp::ExecEngine::Bytecode`] (the default engine).
    pub engine: interp::ExecEngine,
    /// Which candidate source proposed the target pair (artifacts that
    /// predate static candidate generation load as
    /// [`Provenance::Dynamic`]).
    pub provenance: Provenance,
}

impl FailureArtifact {
    /// The deterministic replay configuration: identical to the failing
    /// trial except the machine-dependent wall-clock budget is dropped.
    pub fn fuzz_config(&self) -> FuzzConfig {
        FuzzConfig {
            seed: self.seed,
            max_steps: self.max_steps,
            wall_clock: None,
            postpone_limit: self.postpone_limit,
            record_schedule: false,
            location_precise: self.location_precise,
            switch_only_at_sync: self.switch_only_at_sync,
            max_heap_cells: self.max_heap_cells,
            engine: self.engine,
        }
    }

    /// Serializes to the JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("format_version", Json::u64(FORMAT_VERSION)),
            ("job", Json::str(&self.job)),
            ("entry", Json::str(&self.entry)),
            ("program_digest", Json::Str(format!("{:016x}", self.program_digest))),
            (
                "pair",
                Json::Arr(vec![
                    Json::u64(u64::from(self.pair.first().0)),
                    Json::u64(u64::from(self.pair.second().0)),
                ]),
            ),
            ("seed", Json::u64(self.seed)),
            ("attempt", Json::u64(u64::from(self.attempt))),
            ("kind", Json::str(self.kind.tag())),
            (
                "message",
                match self.kind.message() {
                    Some(message) => Json::str(message),
                    None => Json::Null,
                },
            ),
            ("max_steps", Json::u64(self.max_steps)),
            ("postpone_limit", Json::u64(self.postpone_limit)),
            ("location_precise", Json::Bool(self.location_precise)),
            ("switch_only_at_sync", Json::Bool(self.switch_only_at_sync)),
            (
                "wall_clock_ms",
                match self.wall_clock_ms {
                    Some(ms) => Json::u64(ms),
                    None => Json::Null,
                },
            ),
            (
                "max_heap_cells",
                match self.max_heap_cells {
                    Some(cells) => Json::u64(cells),
                    None => Json::Null,
                },
            ),
            ("provenance", Json::str(self.provenance.tag())),
            ("engine", Json::str(self.engine.name())),
        ])
    }

    /// Deserializes from the JSON object form.
    pub fn from_json(value: &Json) -> Result<FailureArtifact, ArtifactError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| ArtifactError::Malformed(format!("missing field '{key}'")))
        };
        let version = field("format_version")?
            .as_u64()
            .ok_or_else(|| ArtifactError::Malformed("bad format_version".into()))?;
        check_version(version)?;
        let digest_text = field("program_digest")?
            .as_str()
            .ok_or_else(|| ArtifactError::Malformed("bad program_digest".into()))?;
        let program_digest = u64::from_str_radix(digest_text, 16)
            .map_err(|_| ArtifactError::Malformed("bad program_digest".into()))?;
        let pair_items = field("pair")?
            .as_arr()
            .filter(|items| items.len() == 2)
            .ok_or_else(|| ArtifactError::Malformed("bad pair".into()))?;
        let first = pair_items[0]
            .as_u32()
            .ok_or_else(|| ArtifactError::Malformed("bad pair".into()))?;
        let second = pair_items[1]
            .as_u32()
            .ok_or_else(|| ArtifactError::Malformed("bad pair".into()))?;
        let kind_tag = field("kind")?
            .as_str()
            .ok_or_else(|| ArtifactError::Malformed("bad kind".into()))?;
        let message = value.get("message").and_then(Json::as_str);
        let kind = FailureKind::from_parts(kind_tag, message)
            .ok_or_else(|| ArtifactError::Malformed(format!("unknown kind '{kind_tag}'")))?;
        let req_u64 = |key: &str| -> Result<u64, ArtifactError> {
            field(key)?
                .as_u64()
                .ok_or_else(|| ArtifactError::Malformed(format!("bad field '{key}'")))
        };
        let req_bool = |key: &str| -> Result<bool, ArtifactError> {
            field(key)?
                .as_bool()
                .ok_or_else(|| ArtifactError::Malformed(format!("bad field '{key}'")))
        };
        Ok(FailureArtifact {
            job: field("job")?
                .as_str()
                .ok_or_else(|| ArtifactError::Malformed("bad job".into()))?
                .to_owned(),
            entry: field("entry")?
                .as_str()
                .ok_or_else(|| ArtifactError::Malformed("bad entry".into()))?
                .to_owned(),
            program_digest,
            pair: RacePair::new(cil::flat::InstrId(first), cil::flat::InstrId(second)),
            seed: req_u64("seed")?,
            attempt: u32::try_from(req_u64("attempt")?)
                .map_err(|_| ArtifactError::Malformed("bad attempt".into()))?,
            kind,
            max_steps: req_u64("max_steps")?,
            postpone_limit: req_u64("postpone_limit")?,
            location_precise: req_bool("location_precise")?,
            switch_only_at_sync: req_bool("switch_only_at_sync")?,
            wall_clock_ms: value.get("wall_clock_ms").and_then(Json::as_u64),
            max_heap_cells: value.get("max_heap_cells").and_then(Json::as_u64),
            provenance: value
                .get("provenance")
                .and_then(Json::as_str)
                .and_then(Provenance::from_tag)
                .unwrap_or(Provenance::Dynamic),
            engine: value
                .get("engine")
                .and_then(Json::as_str)
                .and_then(interp::ExecEngine::parse)
                .unwrap_or_default(),
        })
    }

    /// Durably writes the artifact to `path`: CRC-footed, staged through a
    /// temp file, fsynced, atomically renamed (failpoint sites
    /// `campaign.artifact.{write,sync,rename}`).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let sealed = durable::seal(&self.to_json().to_text());
        durable::write_durable(path, "campaign.artifact", sealed.as_bytes())
            .map_err(|error| ArtifactError::Io(error.to_string()))
    }

    /// Reads an artifact back from `path`, verifying the CRC footer (a v2
    /// artifact without one still loads).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] if the file is unreadable, torn,
    /// unparsable, or from an unreadable format version.
    pub fn load(path: &Path) -> Result<FailureArtifact, ArtifactError> {
        let text =
            std::fs::read_to_string(path).map_err(|error| ArtifactError::Io(error.to_string()))?;
        let (value, _) = unseal_document(&text)?;
        FailureArtifact::from_json(&value)
    }

    /// Canonical artifact file name for this failure.
    pub fn file_name(&self) -> String {
        format!(
            "{}-pair{}-{}-seed{}.json",
            self.job,
            self.pair.first().0,
            self.pair.second().0,
            self.seed
        )
    }
}

/// Errors loading or validating an artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// Filesystem failure (message from [`std::io::Error`]).
    Io(String),
    /// Unparsable or structurally invalid JSON.
    Malformed(String),
    /// Written by a different artifact format version.
    VersionMismatch {
        /// Version found in the file.
        found: u64,
        /// Version this build writes.
        expected: u64,
    },
    /// The artifact's program digest does not match the program supplied
    /// for replay.
    DigestMismatch {
        /// Digest recorded in the artifact.
        artifact: u64,
        /// Digest of the supplied program.
        program: u64,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(message) => write!(f, "artifact I/O error: {message}"),
            ArtifactError::Malformed(message) => write!(f, "malformed artifact: {message}"),
            ArtifactError::VersionMismatch { found, expected } => write!(
                f,
                "artifact format version {found} (this build reads {expected})"
            ),
            ArtifactError::DigestMismatch { artifact, program } => write!(
                f,
                "artifact was recorded on program {artifact:016x}, got {program:016x}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Converts an optional wall-clock budget to whole milliseconds.
pub(crate) fn duration_ms(duration: Option<Duration>) -> Option<u64> {
    duration.map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil::flat::InstrId;

    fn sample() -> FailureArtifact {
        FailureArtifact {
            job: "figure1".to_owned(),
            entry: "main".to_owned(),
            program_digest: 0x00ab_cdef_0123_4567,
            pair: RacePair::new(InstrId(3), InstrId(17)),
            seed: 42,
            attempt: 2,
            kind: FailureKind::Panic("index out of bounds: the len is 0".to_owned()),
            max_steps: 4096,
            postpone_limit: 20_000,
            location_precise: true,
            switch_only_at_sync: false,
            wall_clock_ms: Some(250),
            max_heap_cells: Some(1 << 20),
            provenance: Provenance::Both,
            engine: interp::ExecEngine::Bytecode,
        }
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let artifact = sample();
        let text = artifact.to_json().to_text();
        let parsed = FailureArtifact::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, artifact);
    }

    #[test]
    fn kinds_without_messages_round_trip() {
        for kind in [FailureKind::StepBudget, FailureKind::Deadline] {
            let artifact = FailureArtifact {
                kind: kind.clone(),
                ..sample()
            };
            let text = artifact.to_json().to_text();
            let parsed =
                FailureArtifact::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed.kind, kind);
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut value = sample().to_json();
        if let Json::Obj(fields) = &mut value {
            fields[0].1 = Json::u64(FORMAT_VERSION + 1);
        }
        assert!(matches!(
            FailureArtifact::from_json(&value),
            Err(ArtifactError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn v2_artifact_without_footer_still_loads() {
        // A pre-CRC artifact: format_version 2, no max_heap_cells, bare
        // JSON with no footer.
        let mut value = sample().to_json();
        if let Json::Obj(fields) = &mut value {
            fields[0].1 = Json::u64(2);
            fields.retain(|(key, _)| {
                key != "max_heap_cells" && key != "provenance" && key != "engine"
            });
        }
        let dir = std::env::temp_dir().join(format!("artifact-v2-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        std::fs::write(&path, value.to_text()).unwrap();
        let loaded = FailureArtifact::load(&path).unwrap();
        assert_eq!(loaded.max_heap_cells, None);
        assert_eq!(loaded.provenance, Provenance::Dynamic);
        assert_eq!(loaded.seed, sample().seed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_byte_is_detected_at_load() {
        let dir = std::env::temp_dir().join(format!("artifact-crc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        sample().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FailureArtifact::load(&path),
            Err(ArtifactError::Malformed(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_tracks_code_changes() {
        let one = cil::compile("global x = 0; proc main() { x = 1; }").unwrap();
        let two = cil::compile("global x = 0; proc main() { x = 2; }").unwrap();
        let one_again = cil::compile("global x = 0; proc main() { x = 1; }").unwrap();
        assert_ne!(program_digest(&one), program_digest(&two));
        assert_eq!(program_digest(&one), program_digest(&one_again));
    }
}
