//! Fault-tolerant fuzzing campaigns over the two-phase RaceFuzzer pipeline.
//!
//! [`racefuzzer::analyze`] assumes every trial terminates cleanly. At
//! campaign scale — every predicted pair of every workload, hundreds of
//! trials each — that assumption fails in exactly the ways the paper's §5
//! experiments had to survive: a workload model livelocks under one seed, a
//! scheduler bug panics, a pathological pair never finishes inside any
//! budget. This crate wraps Phase 1 + Phase 2 in a driver that treats those
//! events as *data*, not process death:
//!
//! * **Panic isolation** — every trial runs under
//!   [`std::panic::catch_unwind`]; a panicking trial becomes a structured
//!   [`TrialFailure`] and the campaign keeps going.
//! * **Trial budgets** — each trial gets a step budget and (optionally) a
//!   wall-clock deadline; exhaustion is a failure, retried with an
//!   exponentially larger step budget, and pairs that keep failing are
//!   **quarantined** with a recorded reason instead of wedging the run.
//! * **Failure artifacts** — every failure persists a self-contained JSON
//!   [`FailureArtifact`] (program digest, full config incl. seed, target
//!   pair, failure kind); [`Campaign::reproduce`] replays it
//!   deterministically, because an execution is a pure function of
//!   `(program, race set, config)` (paper §2.2).
//! * **Checkpoint/resume** — campaign state (completed [`PairReport`]s,
//!   quarantine decisions, the pair cursor) is written atomically to disk
//!   after every pair; a killed campaign resumes from the checkpoint and
//!   finishes with reports identical to an uninterrupted run.
//! * **Crash safety** — every durable write goes through [`durable`]
//!   (temp file, fsync, atomic rename, CRC-32 footer) and is instrumented
//!   with deterministic failpoints (the `faults` crate, compiled out of
//!   release builds); startup runs a [`recovery`] scan that sidelines torn
//!   files instead of trusting them; and the [`supervisor`] loop restarts
//!   a campaign whose *process* keeps dying, quarantining pairs that
//!   crash-loop via the durable [`supervisor::CrashLedger`].
//!
//! # Examples
//!
//! ```
//! use campaign::{Campaign, CampaignJob, CampaignOptions};
//!
//! let program = cil::compile(
//!     r#"
//!     global z = 0;
//!     proc child() { z = 1; }
//!     proc main() {
//!         var t = spawn child();
//!         if (z == 1) { throw Error1; }
//!         join t;
//!     }
//!     "#,
//! )
//! .unwrap();
//! let jobs = vec![CampaignJob::new("figure1", program, "main")];
//! let options = CampaignOptions {
//!     trials_per_pair: 10,
//!     ..CampaignOptions::default()
//! };
//! let report = Campaign::new(jobs, options).run().unwrap();
//! assert!(report.completed());
//! assert!(!report.jobs[0].real_races().is_empty());
//! ```

pub mod artifact;
pub mod checkpoint;
pub mod durable;
pub mod json;
pub mod recovery;
pub mod supervisor;

pub use artifact::{
    program_digest, ArtifactError, FailureArtifact, FailureKind, TrialFailure,
};
pub use checkpoint::{Checkpoint, CheckpointHeader};
pub use recovery::{RecoveryAction, RecoveryEvent};
pub use supervisor::{supervise, ChildExit, CrashLedger, SupervisorOptions, SupervisorOutcome};

use crate::json::Json;
use detector::{DetectorImpl, PredictConfig, RacePair};
use interp::SetupError;
use racefuzzer::{
    fuzz_pair_once, fuzz_pair_once_cached, CandidateSource, EntryCache, FuzzConfig, FuzzOutcome,
    PairCache, PairReport, ParallelOptions, Provenance, SnapshotMode, SnapshotOptions,
    SnapshotStats,
};
use sana::{PruneReason, StaticRaceFilter};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// One unit of campaign work: a compiled program plus its entry procedure.
#[derive(Clone, Debug)]
pub struct CampaignJob {
    /// Job name — used in checkpoints, artifacts, and reports.
    pub name: String,
    /// The program under test.
    pub program: cil::Program,
    /// Entry procedure for the test driver.
    pub entry: String,
}

impl CampaignJob {
    /// Convenience constructor.
    pub fn new(name: &str, program: cil::Program, entry: &str) -> Self {
        CampaignJob {
            name: name.to_owned(),
            program,
            entry: entry.to_owned(),
        }
    }
}

/// How the campaign uses the `sana` static pre-analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StaticFilterMode {
    /// No static analysis; every predicted pair is fuzzed.
    #[default]
    Off,
    /// Statically refuted pairs are quarantined (with
    /// [`QuarantineReason::StaticallyPruned`]) instead of fuzzed.
    Prune,
    /// Every pair is fuzzed; a *confirmed* race on a statically refuted
    /// pair is recorded in [`JobOutcome::soundness_bugs`] — evidence of a
    /// bug in the static analysis or the dynamic detector.
    Audit,
}

/// Tunables for a campaign run.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Phase-1 (prediction) configuration.
    pub predict: PredictConfig,
    /// Trials per predicted pair (the paper uses 100).
    pub trials_per_pair: usize,
    /// Seed of the first trial; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Template for each trial's scheduler configuration. Its `max_steps`
    /// is the *initial* per-trial step budget; its `wall_clock` (if any) is
    /// the per-trial deadline. `seed` is overwritten per trial.
    pub fuzz: FuzzConfig,
    /// Attempts per trial before the pair is quarantined (first run plus
    /// retries). Must be at least 1.
    pub max_attempts: u32,
    /// Step-budget multiplier applied on each retry.
    pub backoff_factor: u64,
    /// Ceiling the growing step budget never exceeds.
    pub max_step_budget: u64,
    /// Directory for failure artifacts; `None` disables persistence (the
    /// failures are still recorded in the report).
    pub artifact_dir: Option<PathBuf>,
    /// Checkpoint file; `None` disables checkpoint/resume.
    pub checkpoint_path: Option<PathBuf>,
    /// Stop (reporting `interrupted = true`) after this many pairs have
    /// been completed *by this invocation* — a deterministic interruption
    /// point for testing resume, and a way to slice long campaigns.
    pub stop_after_pairs: Option<usize>,
    /// Static pre-analysis mode (default [`StaticFilterMode::Off`]).
    pub static_filter: StaticFilterMode,
    /// Where candidate pairs come from (default: the dynamic Phase-1
    /// detector, the paper's protocol). [`CandidateSource::Static`] skips
    /// profiling entirely; [`CandidateSource::Union`] appends the static
    /// generator's extra pairs after the dynamic predictions.
    pub source: CandidateSource,
    /// Phase-2 worker pool (default: sequential). With more than one
    /// worker, pairs are fuzzed concurrently — each trial still isolated by
    /// `catch_unwind` inside its worker — but results are *committed*
    /// (report, failure artifacts, checkpoint) strictly in pair order
    /// through a reorder buffer, so reports, artifact files, and every
    /// intermediate checkpoint are identical to a sequential run.
    pub parallel: ParallelOptions,
    /// Crash ledger written by the [`supervisor`]; pairs listed there are
    /// quarantined with [`QuarantineReason::CrashLoop`] before any trial
    /// runs. `None` disables the check.
    pub crash_ledger_path: Option<PathBuf>,
    /// Snapshot acceleration for the Phase-2 trials (default: the prefix
    /// trie, racefuzzer's default). Campaigns create one shared
    /// [`EntryCache`] per job and one [`PairCache`] per pair, so the
    /// entry prologue is interpreted once per job and retried trials
    /// fast-forward through their already-executed prefix. The retry
    /// backoff loop is safe to mix with caching: snapshots are taken at
    /// scheduler loop-tops, where the *current* config's step budget
    /// governs all later steps.
    pub snapshots: SnapshotOptions,
    /// How long the parallel commit thread waits for an in-flight pair
    /// before checking whether the worker that claimed it has died. This is
    /// a *liveness probe interval*, not a per-pair deadline: as long as the
    /// claiming worker is alive the commit thread keeps waiting, so slow
    /// trials are never misreported as worker loss.
    pub worker_stall: Duration,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            predict: PredictConfig::default(),
            trials_per_pair: 100,
            base_seed: 1,
            fuzz: FuzzConfig::default(),
            max_attempts: 3,
            backoff_factor: 2,
            max_step_budget: 32_000_000,
            artifact_dir: None,
            checkpoint_path: None,
            stop_after_pairs: None,
            static_filter: StaticFilterMode::Off,
            source: CandidateSource::default(),
            parallel: ParallelOptions::default(),
            crash_ledger_path: None,
            snapshots: SnapshotOptions::default(),
            worker_stall: Duration::from_secs(30),
        }
    }
}

/// Why a pair was pulled from rotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuarantineReason {
    /// Its trials kept failing (the final failure, rendered).
    TrialFailures(String),
    /// The static pre-analysis refuted the pair before any trial ran.
    StaticallyPruned(PruneReason),
    /// The [`supervisor`] saw this pair kill the campaign process this
    /// many consecutive times; it is skipped on orders of the crash
    /// ledger.
    CrashLoop(u32),
    /// A failure artifact for this work was torn, bit-flipped, or recorded
    /// on a different program; the payload is the load/validation error.
    CorruptArtifact(String),
}

impl QuarantineReason {
    /// Stable machine-readable tag (checkpoint/artifact `reason` field).
    pub fn tag(&self) -> &'static str {
        match self {
            QuarantineReason::TrialFailures(_) => "trial_failures",
            QuarantineReason::StaticallyPruned(_) => "statically_pruned",
            QuarantineReason::CrashLoop(_) => "crash_loop",
            QuarantineReason::CorruptArtifact(_) => "corrupt_artifact",
        }
    }

    /// The variant's payload, rendered (checkpoint `detail` field).
    pub fn detail(&self) -> String {
        match self {
            QuarantineReason::TrialFailures(message) => message.clone(),
            QuarantineReason::StaticallyPruned(reason) => reason.tag().to_owned(),
            QuarantineReason::CrashLoop(crashes) => crashes.to_string(),
            QuarantineReason::CorruptArtifact(message) => message.clone(),
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::TrialFailures(message) => write!(f, "{message}"),
            QuarantineReason::StaticallyPruned(reason) => {
                write!(f, "statically pruned: {reason}")
            }
            QuarantineReason::CrashLoop(crashes) => {
                write!(f, "killed the campaign process {crashes} consecutive times")
            }
            QuarantineReason::CorruptArtifact(message) => {
                write!(f, "corrupt artifact: {message}")
            }
        }
    }
}

/// A pair pulled from rotation: its trials kept failing, or the static
/// filter refuted it up front.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedPair {
    /// The quarantined pair.
    pub pair: RacePair,
    /// Seed of the trial that exhausted its attempts (the campaign's
    /// `base_seed` for statically pruned pairs, which run no trials).
    pub seed: u64,
    /// Attempts consumed before quarantine (0 for statically pruned pairs).
    pub attempts: u32,
    /// Why the pair was pulled.
    pub reason: QuarantineReason,
}

/// Per-job campaign results — also the unit of checkpointing.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job name.
    pub name: String,
    /// Entry procedure.
    pub entry: String,
    /// [`program_digest`] of the job's program (validates resume).
    pub program_digest: u64,
    /// `true` once Phase 1 has run (distinguishes "not yet predicted"
    /// from "predicted zero pairs").
    pub predicted: bool,
    /// Phase-1 output.
    pub potential: Vec<RacePair>,
    /// Which phase proposed each pair, parallel to `potential` (all
    /// [`Provenance::Dynamic`] for pre-provenance checkpoints).
    pub provenance: Vec<Provenance>,
    /// Per-pair Phase-2 statistics for completed pairs (parallel prefix of
    /// `potential`; a quarantined pair's report covers the trials that
    /// finished before quarantine).
    pub reports: Vec<PairReport>,
    /// Pairs pulled from rotation, with reasons.
    pub quarantined: Vec<QuarantinedPair>,
    /// [`StaticFilterMode::Audit`] findings: rendered descriptions of
    /// confirmed races on statically refuted pairs. A non-empty list means
    /// the static analysis (or the dynamic detector) has a soundness bug.
    pub soundness_bugs: Vec<String>,
    /// Every trial failure observed (including ones later resolved by a
    /// retry with a larger budget).
    pub failures: Vec<TrialFailure>,
    /// Index of the next pair to fuzz (the campaign cursor).
    pub next_pair: usize,
    /// Job-level fatal error (bad entry procedure, panicking predictor).
    pub error: Option<String>,
    /// `true` once the job needs no more work.
    pub done: bool,
}

impl JobOutcome {
    fn fresh(job: &CampaignJob) -> Self {
        JobOutcome {
            name: job.name.clone(),
            entry: job.entry.clone(),
            program_digest: program_digest(&job.program),
            predicted: false,
            potential: Vec::new(),
            provenance: Vec::new(),
            reports: Vec::new(),
            quarantined: Vec::new(),
            soundness_bugs: Vec::new(),
            failures: Vec::new(),
            next_pair: 0,
            error: None,
            done: false,
        }
    }

    /// Pairs confirmed real by the completed trials.
    pub fn real_races(&self) -> Vec<RacePair> {
        self.reports
            .iter()
            .filter(|report| report.is_real())
            .map(|report| report.target)
            .collect()
    }

    /// `true` if `pair` was quarantined.
    pub fn is_quarantined(&self, pair: RacePair) -> bool {
        self.quarantined.iter().any(|entry| entry.pair == pair)
    }

    /// Pairs the static filter refuted, with the per-pair refutation
    /// reason (the campaign's pruning statistics).
    pub fn statically_pruned(&self) -> Vec<(RacePair, PruneReason)> {
        self.quarantined
            .iter()
            .filter_map(|entry| match &entry.reason {
                QuarantineReason::StaticallyPruned(reason) => Some((entry.pair, *reason)),
                _ => None,
            })
            .collect()
    }
}

/// The result of [`Campaign::run`].
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Per-job outcomes, in job order.
    pub jobs: Vec<JobOutcome>,
    /// `true` if the run stopped early at [`CampaignOptions::stop_after_pairs`].
    pub interrupted: bool,
    /// `true` if progress was restored from a checkpoint.
    pub resumed: bool,
    /// Which Phase-1 engine produced the candidate pairs (from
    /// [`CampaignOptions::predict`]); recorded so campaign artifacts are
    /// attributable when comparing epoch vs naive runs.
    pub detector: DetectorImpl,
    /// Which Phase-2 execution engine ran the trials (from
    /// [`racefuzzer::FuzzConfig::engine`]). Attribution only: the engines
    /// are observably identical by contract, so — unlike `detector`, which
    /// determines the candidate set — this is excluded from
    /// [`CampaignReport::canonical_json`], keeping canonical bytes
    /// engine-independent (the differential suite's equality oracle).
    pub engine: interp::ExecEngine,
    /// What the startup recovery scan cleaned up (stale temp files, torn
    /// checkpoints/artifacts sidelined to `.corrupt-N`). Run-relative, so
    /// excluded from [`CampaignReport::canonical_json`].
    pub recovery: Vec<RecoveryEvent>,
}

impl CampaignReport {
    /// `true` if every job ran to completion (possibly with quarantines or
    /// job-level errors — those are *recorded* outcomes, not missing work).
    pub fn completed(&self) -> bool {
        !self.interrupted && self.jobs.iter().all(|job| job.done)
    }

    /// Total trial failures across jobs.
    pub fn failure_count(&self) -> usize {
        self.jobs.iter().map(|job| job.failures.len()).sum()
    }

    /// Total quarantined pairs across jobs.
    pub fn quarantine_count(&self) -> usize {
        self.jobs.iter().map(|job| job.quarantined.len()).sum()
    }

    /// Aggregate snapshot-cache statistics over every completed pair, or
    /// `None` if no pair carried them (acceleration off, or a checkpoint
    /// written by a pre-snapshot campaign). Advisory only — excluded from
    /// [`CampaignReport::canonical_json`].
    pub fn snapshot_stats(&self) -> Option<SnapshotStats> {
        let mut total: Option<SnapshotStats> = None;
        for report in self.jobs.iter().flat_map(|job| &job.reports) {
            if let Some(stats) = &report.snapshots {
                total.get_or_insert_with(SnapshotStats::default).merge(stats);
            }
        }
        total
    }

    /// The report's canonical byte form: everything the campaign *found*,
    /// excluding how it got there (`resumed`, recovery events). A run
    /// killed and resumed a hundred times produces the same canonical
    /// bytes as an uninterrupted one — the crash-torture harness's
    /// equality oracle.
    pub fn canonical_json(&self) -> String {
        Json::obj(vec![
            ("format_version", Json::u64(artifact::FORMAT_VERSION)),
            ("detector", Json::str(self.detector.tag())),
            ("interrupted", Json::Bool(self.interrupted)),
            (
                "jobs",
                Json::Arr(self.jobs.iter().map(checkpoint::job_to_json).collect()),
            ),
        ])
        .to_text()
    }
}

/// The trial engine a campaign drives. The default ([`FuzzRunner`]) is the
/// real Phase-2 scheduler; tests inject runners that panic or spin to
/// exercise the fault-tolerance paths without corrupting a real engine.
///
/// `run_trial` takes `&self` because one runner is shared by every worker
/// of a parallel campaign; runners needing mutable state should use
/// interior mutability (atomics suffice for the fault-injection runners in
/// this workspace's tests).
pub trait TrialRunner {
    /// Runs one race-directed trial.
    ///
    /// # Errors
    ///
    /// Returns [`SetupError`] if `entry` does not name a zero-argument
    /// procedure.
    fn run_trial(
        &self,
        program: &cil::Program,
        entry: &str,
        pair: RacePair,
        config: &FuzzConfig,
    ) -> Result<FuzzOutcome, SetupError>;

    /// [`TrialRunner::run_trial`] with an optional snapshot cache. The
    /// default ignores the cache, so fault-injection runners (and any
    /// external runner that is not the real scheduler) stay correct
    /// without changes; only engines that can honour the byte-identity
    /// contract should override this.
    ///
    /// # Errors
    ///
    /// Returns [`SetupError`] if `entry` does not name a zero-argument
    /// procedure.
    fn run_trial_cached(
        &self,
        program: &cil::Program,
        entry: &str,
        pair: RacePair,
        config: &FuzzConfig,
        cache: Option<&PairCache>,
    ) -> Result<FuzzOutcome, SetupError> {
        let _ = cache;
        self.run_trial(program, entry, pair, config)
    }
}

/// The production trial runner: [`racefuzzer::fuzz_pair_once`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FuzzRunner;

impl TrialRunner for FuzzRunner {
    fn run_trial(
        &self,
        program: &cil::Program,
        entry: &str,
        pair: RacePair,
        config: &FuzzConfig,
    ) -> Result<FuzzOutcome, SetupError> {
        fuzz_pair_once(program, entry, pair, config)
    }

    fn run_trial_cached(
        &self,
        program: &cil::Program,
        entry: &str,
        pair: RacePair,
        config: &FuzzConfig,
        cache: Option<&PairCache>,
    ) -> Result<FuzzOutcome, SetupError> {
        fuzz_pair_once_cached(program, entry, pair, config, cache)
    }
}

/// Result of replaying a [`FailureArtifact`].
#[derive(Debug)]
pub struct Reproduction {
    /// The failure the replay produced; `None` if the trial completed
    /// normally (the failure did not reproduce).
    pub kind: Option<FailureKind>,
    /// The trial outcome, when the trial returned one (absent for panics).
    pub outcome: Option<FuzzOutcome>,
}

impl Reproduction {
    /// `true` if the replay reproduced the artifact's recorded failure.
    pub fn matches(&self, artifact: &FailureArtifact) -> bool {
        self.kind.as_ref() == Some(&artifact.kind)
    }
}

/// A fault-tolerant fuzzing campaign over a set of jobs.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// The jobs, in execution order.
    pub jobs: Vec<CampaignJob>,
    /// Tunables.
    pub options: CampaignOptions,
}

enum Guarded {
    Completed(FuzzOutcome),
    Failed(FailureKind, Option<FuzzOutcome>),
    Setup(String),
}

/// Everything one pair's trials produced, before any of it touches job
/// state. Workers build these off-thread; the main thread commits them in
/// pair order ([`Campaign::commit_pair`]).
struct PairRun {
    report: PairReport,
    failures: Vec<TrialFailure>,
    quarantine: Option<QuarantinedPair>,
    fatal: Option<String>,
}

/// How a job's pair loop ended.
enum PairsProgress {
    /// Every pair is committed.
    Finished,
    /// A job-fatal setup error; the job is marked done with an error.
    JobStopped,
    /// [`CampaignOptions::stop_after_pairs`] was reached.
    Interrupted,
}

impl Campaign {
    /// Creates a campaign.
    pub fn new(jobs: Vec<CampaignJob>, options: CampaignOptions) -> Self {
        Campaign { jobs, options }
    }

    /// Runs the campaign with the production trial runner.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] only for filesystem failures writing
    /// checkpoints or artifacts — trial and job failures are recorded in
    /// the report, never returned.
    pub fn run(&self) -> Result<CampaignReport, ArtifactError> {
        self.run_with(&FuzzRunner)
    }

    /// Runs the campaign with a caller-supplied trial runner.
    ///
    /// # Errors
    ///
    /// See [`Campaign::run`].
    pub fn run_with(
        &self,
        runner: &(dyn TrialRunner + Sync),
    ) -> Result<CampaignReport, ArtifactError> {
        let mut events = Vec::new();
        if let Some(dir) = &self.options.artifact_dir {
            recovery::scan_artifact_dir(dir, &mut events);
        }
        let ledger = self.load_ledger(&mut events);
        let (mut jobs, resumed) = self.restore_or_fresh(&mut events);
        let mut pairs_this_run = 0usize;

        for index in 0..self.jobs.len() {
            if jobs[index].done {
                continue;
            }
            let job = &self.jobs[index];

            if !jobs[index].predicted {
                match guarded_predict(job, &self.options.predict, self.options.source) {
                    Ok((potential, provenance)) => {
                        jobs[index].potential = potential;
                        jobs[index].provenance = provenance;
                        jobs[index].predicted = true;
                    }
                    Err(message) => {
                        jobs[index].error = Some(message);
                        jobs[index].done = true;
                        self.save_checkpoint(&jobs)?;
                        continue;
                    }
                }
                self.save_checkpoint(&jobs)?;
            }

            // The static filter is rebuilt (not checkpointed) on resume: it
            // is a deterministic function of the program, so the rebuilt
            // filter refutes exactly the pairs the interrupted run refuted.
            let filter = match self.options.static_filter {
                StaticFilterMode::Off => None,
                StaticFilterMode::Prune | StaticFilterMode::Audit => {
                    StaticRaceFilter::for_entry(&job.program, &job.entry)
                }
            };

            let progress = if self.options.parallel.is_parallel() {
                self.run_pairs_parallel(
                    runner,
                    index,
                    &mut jobs,
                    filter.as_ref(),
                    &ledger,
                    &mut pairs_this_run,
                )?
            } else {
                self.run_pairs_sequential(
                    runner,
                    index,
                    &mut jobs,
                    filter.as_ref(),
                    &ledger,
                    &mut pairs_this_run,
                )?
            };
            match progress {
                PairsProgress::Finished => {
                    if !jobs[index].done {
                        jobs[index].done = true;
                        self.save_checkpoint(&jobs)?;
                    }
                }
                PairsProgress::JobStopped => {}
                PairsProgress::Interrupted => {
                    return Ok(CampaignReport {
                        jobs,
                        interrupted: true,
                        resumed,
                        detector: self.options.predict.detector,
                        engine: self.options.fuzz.engine,
                        recovery: events,
                    });
                }
            }
        }

        Ok(CampaignReport {
            jobs,
            interrupted: false,
            resumed,
            detector: self.options.predict.detector,
            engine: self.options.fuzz.engine,
            recovery: events,
        })
    }

    /// Loads the crash ledger, sidelining it (and starting empty) if it is
    /// torn or corrupt — a bad ledger must not wedge the campaign.
    fn load_ledger(&self, events: &mut Vec<RecoveryEvent>) -> CrashLedger {
        let Some(path) = &self.options.crash_ledger_path else {
            return CrashLedger::empty();
        };
        recovery::sweep_tmp(path, events);
        if !path.exists() {
            return CrashLedger::empty();
        }
        match CrashLedger::load(path) {
            Ok(ledger) => ledger,
            Err(error) => {
                if recovery::sideline(path).is_ok() {
                    events.push(RecoveryEvent {
                        path: path.clone(),
                        action: RecoveryAction::SidelinedCorrupt,
                        reason: error.to_string(),
                    });
                }
                CrashLedger::empty()
            }
        }
    }

    /// The per-job snapshot entry cache, or `None` when acceleration is
    /// off (or when the trial template records schedules / carries a
    /// wall-clock deadline, in which case racefuzzer bypasses the cache
    /// per trial anyway — the cache is still created so statistics record
    /// the bypass).
    fn entry_cache(&self) -> Option<Arc<EntryCache>> {
        (self.options.snapshots.mode != SnapshotMode::Off)
            .then(|| EntryCache::new(self.options.snapshots))
    }

    /// The pre-existing sequential pair loop: fuzz, commit, checkpoint,
    /// advance — one pair at a time on the calling thread.
    fn run_pairs_sequential(
        &self,
        runner: &(dyn TrialRunner + Sync),
        index: usize,
        jobs: &mut [JobOutcome],
        filter: Option<&StaticRaceFilter>,
        ledger: &CrashLedger,
        pairs_this_run: &mut usize,
    ) -> Result<PairsProgress, ArtifactError> {
        let job = &self.jobs[index];
        let entry_cache = self.entry_cache();
        while jobs[index].next_pair < jobs[index].potential.len() {
            let target = jobs[index].potential[jobs[index].next_pair];
            if let Some(crashes) = ledger.lookup(&jobs[index].name, jobs[index].next_pair) {
                self.commit_crashloop(&mut jobs[index], target, crashes);
                self.save_checkpoint(jobs)?;
                continue;
            }
            if self.options.static_filter == StaticFilterMode::Prune {
                if let Some(reason) = filter.and_then(|f| f.refute(&job.program, &target)) {
                    self.commit_pruned(&mut jobs[index], target, reason);
                    self.save_checkpoint(jobs)?;
                    continue;
                }
            }
            let run = run_pair(
                runner,
                &job.program,
                &job.entry,
                target,
                &self.options,
                entry_cache.as_ref(),
            );
            let fatal = self.commit_pair(job, &mut jobs[index], run)?;
            self.audit_pair(job, &mut jobs[index], filter, target);
            if let Some(message) = fatal {
                jobs[index].error = Some(message);
                jobs[index].done = true;
                self.save_checkpoint(jobs)?;
                return Ok(PairsProgress::JobStopped);
            }
            jobs[index].next_pair += 1;
            self.save_checkpoint(jobs)?;
            *pairs_this_run += 1;
            if Some(*pairs_this_run) == self.options.stop_after_pairs {
                return Ok(PairsProgress::Interrupted);
            }
        }
        Ok(PairsProgress::Finished)
    }

    /// The parallel pair loop: workers steal pair indices off an atomic
    /// cursor and fuzz them concurrently (every trial still isolated by
    /// `catch_unwind` inside its worker); the calling thread commits
    /// finished pairs strictly in pair order through a reorder buffer, so
    /// reports, artifact files, and every intermediate checkpoint are
    /// byte-identical to [`Campaign::run_pairs_sequential`].
    fn run_pairs_parallel(
        &self,
        runner: &(dyn TrialRunner + Sync),
        index: usize,
        jobs: &mut [JobOutcome],
        filter: Option<&StaticRaceFilter>,
        ledger: &CrashLedger,
        pairs_this_run: &mut usize,
    ) -> Result<PairsProgress, ArtifactError> {
        let job = &self.jobs[index];
        let start = jobs[index].next_pair;
        let total = jobs[index].potential.len();
        if start >= total {
            return Ok(PairsProgress::Finished);
        }
        let targets: Vec<RacePair> = jobs[index].potential[start..].to_vec();
        // Prune and crash-ledger decisions are made up front on this
        // thread — both are deterministic and cheap — so workers do pure
        // trial work.
        let crash_looped: Vec<Option<u32>> = (0..targets.len())
            .map(|offset| ledger.lookup(&jobs[index].name, start + offset))
            .collect();
        let refuted: Vec<Option<PruneReason>> = targets
            .iter()
            .enumerate()
            .map(|(offset, target)| {
                if crash_looped[offset].is_none()
                    && self.options.static_filter == StaticFilterMode::Prune
                {
                    filter.and_then(|f| f.refute(&job.program, target))
                } else {
                    None
                }
            })
            .collect();
        let work: Vec<usize> = (0..targets.len())
            .filter(|&offset| refuted[offset].is_none() && crash_looped[offset].is_none())
            .collect();

        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        // Shared read-side across workers: the entry prologue is computed
        // by whichever worker gets there first and reused by all.
        let entry_cache = self.entry_cache();
        let (sender, receiver) = mpsc::channel::<(usize, PairRun)>();
        let worker_count = self.options.parallel.workers.max(1).min(work.len().max(1));
        // Worker-loss bookkeeping: which worker claimed each offset
        // (worker id + 1; 0 = unclaimed), and which workers are still
        // running. A worker that dies without delivering — injected via
        // the `campaign.worker` failpoint, or a panic outside the
        // per-trial guard — must not hang the commit loop forever.
        let claimed: Vec<AtomicUsize> = (0..targets.len()).map(|_| AtomicUsize::new(0)).collect();
        let alive: Vec<AtomicBool> = (0..worker_count).map(|_| AtomicBool::new(true)).collect();

        std::thread::scope(|scope| {
            for worker_id in 0..worker_count {
                let sender = sender.clone();
                let (cursor, stop, work, targets) = (&cursor, &stop, &work, &targets);
                let (claimed, alive) = (&claimed, &alive);
                let entry_cache = &entry_cache;
                scope.spawn(move || {
                    // Flips the liveness flag on *any* exit path, panics
                    // included, so the commit thread can tell a slow trial
                    // from a result that will never arrive.
                    let _liveness = WorkerGuard(&alive[worker_id]);
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&offset) = work.get(slot) else {
                            break;
                        };
                        claimed[offset].store(worker_id + 1, Ordering::Release);
                        if faults::hit("campaign.worker") == faults::Fault::Error {
                            return; // injected worker death: deliver nothing
                        }
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            run_pair(
                                runner,
                                &job.program,
                                &job.entry,
                                targets[offset],
                                &self.options,
                                entry_cache.as_ref(),
                            )
                        }));
                        let Ok(run) = run else {
                            return; // worker-level panic: die without delivering
                        };
                        if sender.send((offset, run)).is_err() {
                            break; // the commit loop returned early
                        }
                    }
                });
            }
            drop(sender);

            let mut buffer: BTreeMap<usize, PairRun> = BTreeMap::new();
            for offset in 0..targets.len() {
                let target = targets[offset];
                if let Some(crashes) = crash_looped[offset] {
                    self.commit_crashloop(&mut jobs[index], target, crashes);
                    self.save_checkpoint(jobs)?;
                    continue;
                }
                if let Some(reason) = refuted[offset] {
                    self.commit_pruned(&mut jobs[index], target, reason);
                    self.save_checkpoint(jobs)?;
                    continue;
                }
                let run = loop {
                    if let Some(run) = buffer.remove(&offset) {
                        break run;
                    }
                    match receiver.recv_timeout(self.options.worker_stall) {
                        Ok((arrived, run)) => {
                            if arrived == offset {
                                break run;
                            }
                            buffer.insert(arrived, run);
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            // Every worker has exited and this pair never
                            // arrived: the claiming worker died mid-pair.
                            break worker_loss_run(target, &self.options);
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            // Only declare the pair lost if the worker that
                            // claimed it is gone; a live worker is just
                            // running long trials, so keep waiting.
                            let claim = claimed[offset].load(Ordering::Acquire);
                            let claimer_dead =
                                claim != 0 && !alive[claim - 1].load(Ordering::Acquire);
                            if claimer_dead {
                                // Final drain: the claimer may have
                                // delivered this pair and died on a later
                                // one.
                                while let Ok((arrived, run)) = receiver.try_recv() {
                                    buffer.insert(arrived, run);
                                }
                                if let Some(run) = buffer.remove(&offset) {
                                    break run;
                                }
                                break worker_loss_run(target, &self.options);
                            }
                        }
                    }
                };
                let fatal = self.commit_pair(job, &mut jobs[index], run)?;
                self.audit_pair(job, &mut jobs[index], filter, target);
                if let Some(message) = fatal {
                    stop.store(true, Ordering::Relaxed);
                    jobs[index].error = Some(message);
                    jobs[index].done = true;
                    self.save_checkpoint(jobs)?;
                    return Ok(PairsProgress::JobStopped);
                }
                jobs[index].next_pair += 1;
                self.save_checkpoint(jobs)?;
                *pairs_this_run += 1;
                if Some(*pairs_this_run) == self.options.stop_after_pairs {
                    // Workers stop stealing; whatever they finish after this
                    // point is discarded, and the resumed run redoes it —
                    // repeated work is deterministic work.
                    stop.store(true, Ordering::Relaxed);
                    return Ok(PairsProgress::Interrupted);
                }
            }
            Ok(PairsProgress::Finished)
        })
    }

    /// Commits a statically refuted pair: an empty report keeps `reports` a
    /// parallel prefix of `potential`, and no trials are spent.
    fn commit_pruned(&self, state: &mut JobOutcome, target: RacePair, reason: PruneReason) {
        state.reports.push(PairReport::empty(target));
        state.quarantined.push(QuarantinedPair {
            pair: target,
            seed: self.options.base_seed,
            attempts: 0,
            reason: QuarantineReason::StaticallyPruned(reason),
        });
        state.next_pair += 1;
    }

    /// Commits a pair the crash ledger ordered skipped: same shape as
    /// [`Campaign::commit_pruned`], different reason.
    fn commit_crashloop(&self, state: &mut JobOutcome, target: RacePair, crashes: u32) {
        state.reports.push(PairReport::empty(target));
        state.quarantined.push(QuarantinedPair {
            pair: target,
            seed: self.options.base_seed,
            attempts: 0,
            reason: QuarantineReason::CrashLoop(crashes),
        });
        state.next_pair += 1;
    }

    /// Commits one pair's [`PairRun`] to job state: artifacts and failure
    /// records first (in seed order), then the report and any quarantine.
    /// Returns the job-fatal message, if the pair hit a setup error.
    fn commit_pair(
        &self,
        job: &CampaignJob,
        state: &mut JobOutcome,
        run: PairRun,
    ) -> Result<Option<String>, ArtifactError> {
        for failure in run.failures {
            self.persist_artifact(job, state, &failure)?;
            state.failures.push(failure);
        }
        if run.fatal.is_some() {
            // Match the historical sequential behavior: a setup error
            // abandons the pair without pushing its partial report.
            return Ok(run.fatal);
        }
        state.reports.push(run.report);
        if let Some(entry) = run.quarantine {
            state.quarantined.push(entry);
        }
        Ok(None)
    }

    /// [`StaticFilterMode::Audit`]: record a soundness bug if a pair just
    /// confirmed by fuzzing is one the static filter would have refuted.
    fn audit_pair(
        &self,
        job: &CampaignJob,
        state: &mut JobOutcome,
        filter: Option<&StaticRaceFilter>,
        target: RacePair,
    ) {
        if self.options.static_filter != StaticFilterMode::Audit {
            return;
        }
        let confirmed = state
            .reports
            .last()
            .is_some_and(|report| report.target == target && report.is_real());
        if !confirmed {
            return;
        }
        if let Some(reason) = filter.and_then(|f| f.refute(&job.program, &target)) {
            state.soundness_bugs.push(format!(
                "pair {} was confirmed by fuzzing but statically refuted as {}",
                target.describe(&job.program),
                reason
            ));
        }
    }

    fn persist_artifact(
        &self,
        job: &CampaignJob,
        state: &JobOutcome,
        failure: &TrialFailure,
    ) -> Result<(), ArtifactError> {
        let Some(dir) = &self.options.artifact_dir else {
            return Ok(());
        };
        std::fs::create_dir_all(dir).map_err(|error| ArtifactError::Io(error.to_string()))?;
        let artifact = FailureArtifact {
            job: state.name.clone(),
            entry: job.entry.clone(),
            program_digest: state.program_digest,
            pair: failure.pair,
            seed: failure.seed,
            attempt: failure.attempt,
            kind: failure.kind.clone(),
            max_steps: failure.step_budget,
            postpone_limit: self.options.fuzz.postpone_limit,
            location_precise: self.options.fuzz.location_precise,
            switch_only_at_sync: self.options.fuzz.switch_only_at_sync,
            wall_clock_ms: artifact::duration_ms(self.options.fuzz.wall_clock),
            max_heap_cells: self.options.fuzz.max_heap_cells,
            engine: self.options.fuzz.engine,
            // The failing pair is the one currently being fuzzed — its
            // report has not been committed yet, so its index is the
            // report count. Pre-provenance jobs default to Dynamic.
            provenance: state
                .provenance
                .get(state.reports.len())
                .copied()
                .unwrap_or(Provenance::Dynamic),
        };
        // Later attempts overwrite earlier ones: one artifact per failing
        // (pair, seed), always describing the most recent failure.
        artifact.save(&dir.join(artifact.file_name()))
    }

    fn restore_or_fresh(&self, events: &mut Vec<RecoveryEvent>) -> (Vec<JobOutcome>, bool) {
        let fresh: Vec<JobOutcome> = self.jobs.iter().map(JobOutcome::fresh).collect();
        let Some(path) = &self.options.checkpoint_path else {
            return (fresh, false);
        };
        // The recovery scan sweeps stale temp files and sidelines a torn
        // or corrupt checkpoint (recorded as an event); either way the
        // campaign starts from the best state that *verifiably* survived.
        let Some(checkpoint) = recovery::recover_checkpoint(path, events) else {
            return (fresh, false);
        };
        if checkpoint.header
            != (CheckpointHeader {
                trials_per_pair: self.options.trials_per_pair,
                base_seed: self.options.base_seed,
            })
        {
            return (fresh, false);
        }
        // Adopt saved progress job-by-job where name and program digest
        // both match; anything else (renamed job, recompiled program)
        // starts over — stale progress is worse than repeated work.
        let mut resumed_any = false;
        let jobs = fresh
            .into_iter()
            .map(|fresh_job| {
                match checkpoint.jobs.iter().find(|saved| {
                    saved.name == fresh_job.name
                        && saved.program_digest == fresh_job.program_digest
                }) {
                    Some(saved) => {
                        resumed_any = true;
                        saved.clone()
                    }
                    None => fresh_job,
                }
            })
            .collect();
        (jobs, resumed_any)
    }

    fn save_checkpoint(&self, jobs: &[JobOutcome]) -> Result<(), ArtifactError> {
        let Some(path) = &self.options.checkpoint_path else {
            return Ok(());
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|error| ArtifactError::Io(error.to_string()))?;
            }
        }
        Checkpoint {
            header: CheckpointHeader {
                trials_per_pair: self.options.trials_per_pair,
                base_seed: self.options.base_seed,
            },
            jobs: jobs.to_vec(),
        }
        .save(path)
    }

    /// Deterministically replays a failure artifact against this campaign's
    /// job of the same name.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::DigestMismatch`] if the job's program is
    /// not the program the failure was recorded on, or
    /// [`ArtifactError::Malformed`] if no job matches the artifact's name.
    pub fn reproduce(&self, artifact: &FailureArtifact) -> Result<Reproduction, ArtifactError> {
        self.reproduce_with(&FuzzRunner, artifact)
    }

    /// [`Campaign::reproduce`] with a caller-supplied trial runner.
    ///
    /// # Errors
    ///
    /// See [`Campaign::reproduce`].
    pub fn reproduce_with(
        &self,
        runner: &dyn TrialRunner,
        artifact: &FailureArtifact,
    ) -> Result<Reproduction, ArtifactError> {
        let job = self
            .jobs
            .iter()
            .find(|job| job.name == artifact.job)
            .ok_or_else(|| {
                ArtifactError::Malformed(format!("campaign has no job named '{}'", artifact.job))
            })?;
        reproduce_on(&job.program, &job.entry, runner, artifact)
    }

    /// Replays every artifact in `dir`, skipping (not crashing on) the
    /// ones that are torn, bit-flipped, or recorded on a different
    /// program. Each skip carries a structured
    /// [`QuarantineReason::CorruptArtifact`]; paths are visited in sorted
    /// order so the sweep is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] only if the directory itself cannot
    /// be read — per-artifact problems are `skipped` entries, not errors.
    pub fn reproduce_dir(&self, dir: &Path) -> Result<ArtifactSweep, ArtifactError> {
        let entries =
            std::fs::read_dir(dir).map_err(|error| ArtifactError::Io(error.to_string()))?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| {
                path.file_name()
                    .and_then(|name| name.to_str())
                    .is_some_and(|name| name.ends_with(".json"))
            })
            .collect();
        paths.sort();
        let mut sweep = ArtifactSweep {
            reproduced: Vec::new(),
            skipped: Vec::new(),
        };
        for path in paths {
            let artifact = match FailureArtifact::load(&path) {
                Ok(artifact) => artifact,
                Err(error) => {
                    sweep
                        .skipped
                        .push((path, QuarantineReason::CorruptArtifact(error.to_string())));
                    continue;
                }
            };
            match self.reproduce(&artifact) {
                Ok(reproduction) => sweep.reproduced.push((path, reproduction)),
                Err(error) => sweep
                    .skipped
                    .push((path, QuarantineReason::CorruptArtifact(error.to_string()))),
            }
        }
        Ok(sweep)
    }
}

/// Result of [`Campaign::reproduce_dir`]: what replayed, what was skipped
/// and why.
#[derive(Debug)]
pub struct ArtifactSweep {
    /// Artifacts that loaded, validated, and replayed.
    pub reproduced: Vec<(PathBuf, Reproduction)>,
    /// Artifacts skipped, with the structured reason (torn file, CRC
    /// mismatch, digest mismatch, unknown job).
    pub skipped: Vec<(PathBuf, QuarantineReason)>,
}

/// Sets its worker's liveness flag to `false` when dropped — however the
/// worker exits.
struct WorkerGuard<'a>(&'a AtomicBool);

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// The [`PairRun`] the commit thread synthesizes for a pair whose worker
/// died before delivering: one attributed failure, quarantined, and the
/// campaign moves on.
fn worker_loss_run(target: RacePair, options: &CampaignOptions) -> PairRun {
    let kind = FailureKind::WorkerLoss(
        "worker thread died before delivering this pair's trials".to_owned(),
    );
    PairRun {
        report: PairReport::empty(target),
        failures: vec![TrialFailure {
            pair: target,
            seed: options.base_seed,
            attempt: 1,
            step_budget: options.fuzz.max_steps,
            kind: kind.clone(),
        }],
        quarantine: Some(QuarantinedPair {
            pair: target,
            seed: options.base_seed,
            attempts: 1,
            reason: QuarantineReason::TrialFailures(kind.to_string()),
        }),
        fatal: None,
    }
}

/// Replays `artifact` against `program` with `runner`.
///
/// The replay uses the artifact's recorded configuration (seed and the step
/// budget in force at the failure) with the machine-dependent wall-clock
/// deadline removed, so the result is deterministic.
///
/// # Errors
///
/// Returns [`ArtifactError::DigestMismatch`] if `program` is not the
/// program the failure was recorded on.
pub fn reproduce_on(
    program: &cil::Program,
    entry: &str,
    runner: &dyn TrialRunner,
    artifact: &FailureArtifact,
) -> Result<Reproduction, ArtifactError> {
    let digest = program_digest(program);
    if digest != artifact.program_digest {
        return Err(ArtifactError::DigestMismatch {
            artifact: artifact.program_digest,
            program: digest,
        });
    }
    let config = artifact.fuzz_config();
    // Replays run uncached: a reproduction is a single trial, so there is
    // no prefix to share and nothing to amortise.
    match guarded_trial(runner, program, entry, artifact.pair, &config, None) {
        Guarded::Completed(outcome) => Ok(Reproduction {
            kind: None,
            outcome: Some(outcome),
        }),
        Guarded::Failed(kind, outcome) => Ok(Reproduction {
            kind: Some(kind),
            outcome,
        }),
        Guarded::Setup(message) => Err(ArtifactError::Malformed(format!(
            "artifact entry procedure is invalid: {message}"
        ))),
    }
}

/// Runs every trial of one pair — retries, backoff, quarantine — without
/// touching any shared state. Both the sequential loop and the parallel
/// workers use this; the difference is only *where* it runs and when the
/// resulting [`PairRun`] is committed.
fn run_pair(
    runner: &dyn TrialRunner,
    program: &cil::Program,
    entry: &str,
    target: RacePair,
    options: &CampaignOptions,
    entry_cache: Option<&Arc<EntryCache>>,
) -> PairRun {
    // One decision trie per pair, sharing the job-wide entry prologue.
    // Retries with grown step budgets share it too — snapshots live at
    // scheduler loop-tops, where the budget check always consults the
    // *current* config, so a trial resumed under a larger budget behaves
    // exactly as if it had re-executed its prefix.
    let cache = entry_cache.map(|shared| PairCache::new(Arc::clone(shared)));
    let mut run = PairRun {
        report: PairReport::empty(target),
        failures: Vec::new(),
        quarantine: None,
        fatal: None,
    };
    'trials: for trial in 0..options.trials_per_pair {
        let seed = options.base_seed + trial as u64;
        let mut budget = options.fuzz.max_steps;
        let mut attempt: u32 = 1;
        loop {
            let config = FuzzConfig {
                seed,
                max_steps: budget,
                ..options.fuzz.clone()
            };
            match guarded_trial(runner, program, entry, target, &config, cache.as_deref()) {
                Guarded::Completed(outcome) => {
                    run.report.absorb(seed, &outcome, program);
                    break;
                }
                Guarded::Setup(message) => {
                    run.fatal = Some(format!("setup error: {message}"));
                    break 'trials;
                }
                Guarded::Failed(kind, _) => {
                    run.failures.push(TrialFailure {
                        pair: target,
                        seed,
                        attempt,
                        step_budget: budget,
                        kind: kind.clone(),
                    });
                    if attempt >= options.max_attempts.max(1) {
                        run.quarantine = Some(QuarantinedPair {
                            pair: target,
                            seed,
                            attempts: attempt,
                            reason: QuarantineReason::TrialFailures(kind.to_string()),
                        });
                        break 'trials;
                    }
                    attempt += 1;
                    budget = budget
                        .saturating_mul(options.backoff_factor.max(1))
                        .min(options.max_step_budget);
                }
            }
        }
    }
    // Advisory statistics: excluded from `PairReport`'s `Debug` identity
    // and from the canonical checkpoint bytes.
    if let Some(cache) = &cache {
        run.report.snapshots = Some(cache.stats());
    }
    run
}

fn guarded_trial(
    runner: &dyn TrialRunner,
    program: &cil::Program,
    entry: &str,
    pair: RacePair,
    config: &FuzzConfig,
    cache: Option<&PairCache>,
) -> Guarded {
    let result = catch_unwind(AssertUnwindSafe(|| {
        runner.run_trial_cached(program, entry, pair, config, cache)
    }));
    match result {
        Err(payload) => Guarded::Failed(FailureKind::Panic(panic_message(payload.as_ref())), None),
        Ok(Err(setup)) => Guarded::Setup(setup.to_string()),
        Ok(Ok(outcome)) => match &outcome.termination {
            interp::Termination::StepLimit => {
                Guarded::Failed(FailureKind::StepBudget, Some(outcome))
            }
            interp::Termination::DeadlineExceeded => {
                Guarded::Failed(FailureKind::Deadline, Some(outcome))
            }
            // A blown heap budget is a *verdict on the program under
            // test* — a reported termination absorbed into
            // `PairReport::memory_trials` — not a harness failure, so it
            // is never retried or quarantined.
            interp::Termination::EngineError(interp::ExecError::MemoryBudget { .. }) => {
                Guarded::Completed(outcome)
            }
            interp::Termination::EngineError(error) => {
                Guarded::Failed(FailureKind::EngineError(error.to_string()), Some(outcome))
            }
            _ => Guarded::Completed(outcome),
        },
    }
}

fn guarded_predict(
    job: &CampaignJob,
    predict: &PredictConfig,
    source: CandidateSource,
) -> Result<(Vec<RacePair>, Vec<Provenance>), String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        racefuzzer::gather_candidates(&job.program, &job.entry, predict, source)
    }));
    match result {
        Err(payload) => Err(format!(
            "prediction panicked: {}",
            panic_message(payload.as_ref())
        )),
        Ok(Err(setup)) => Err(format!("setup error: {setup}")),
        Ok(Ok(gathered)) => Ok(gathered),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_owned()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_like() -> cil::Program {
        cil::compile(
            r#"
            global z = 0;
            proc child() { z = 1; }
            proc main() {
                var t = spawn child();
                if (z == 1) { throw Error1; }
                join t;
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn healthy_campaign_matches_plain_analyze() {
        let program = figure1_like();
        let options = CampaignOptions {
            trials_per_pair: 20,
            ..CampaignOptions::default()
        };
        let campaign = Campaign::new(
            vec![CampaignJob::new("fig1", program.clone(), "main")],
            options,
        );
        let report = campaign.run().unwrap();
        assert!(report.completed());
        assert!(!report.resumed);
        assert_eq!(report.failure_count(), 0);

        let plain = racefuzzer::analyze(
            &program,
            "main",
            &racefuzzer::AnalyzeOptions::with_trials(20),
        )
        .unwrap();
        assert_eq!(
            format!("{:?}", report.jobs[0].reports),
            format!("{:?}", plain.pairs)
        );
    }

    #[test]
    fn setup_error_is_a_job_error_not_a_crash() {
        let program = figure1_like();
        let campaign = Campaign::new(
            vec![CampaignJob::new("broken", program, "no_such_proc")],
            CampaignOptions::default(),
        );
        let report = campaign.run().unwrap();
        assert!(report.completed());
        assert!(report.jobs[0].error.is_some());
    }
}
