//! Campaign checkpointing: atomic save after every pair, resume on load.
//!
//! The checkpoint records the campaign's full cursor — which jobs have
//! predicted, which pairs are fuzzed, every completed [`PairReport`],
//! quarantine decisions, and trial failures — so a killed campaign resumed
//! from disk finishes with reports identical to an uninterrupted run. The
//! write goes through [`crate::durable`]: temp file, fsync, atomic rename,
//! and a CRC-32 footer, so a crash mid-checkpoint leaves the previous
//! checkpoint intact and a torn file is *detected* on load rather than
//! trusted (the recovery scan sidelines it and the campaign redoes the
//! lost pairs deterministically).
//!
//! Granularity is one pair: a kill mid-pair loses only that pair's trials,
//! and re-running them is deterministic (seeds are `base_seed + trial`), so
//! nothing observable changes.
//!
//! This build writes format version 3 and still reads version 2 (no CRC
//! footer, no `memory_trials`).

use crate::artifact::{
    check_version, unseal_document, ArtifactError, FailureKind, TrialFailure, FORMAT_VERSION,
};
use crate::durable;
use crate::json::Json;
use crate::{JobOutcome, QuarantineReason, QuarantinedPair};
use sana::PruneReason;
use cil::flat::InstrId;
use detector::RacePair;
use racefuzzer::{PairReport, Provenance};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Header data validated on resume: a checkpoint taken under different
/// campaign parameters would silently produce different reports, so it is
/// rejected instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Trials per pair the checkpointed campaign was running.
    pub trials_per_pair: usize,
    /// First trial seed.
    pub base_seed: u64,
}

/// A loaded checkpoint: header plus per-job progress.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Campaign parameters at checkpoint time.
    pub header: CheckpointHeader,
    /// Per-job progress, in campaign job order.
    pub jobs: Vec<JobOutcome>,
}

impl Checkpoint {
    /// Serializes the checkpoint document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("format_version", Json::u64(FORMAT_VERSION)),
            ("trials_per_pair", Json::usize(self.header.trials_per_pair)),
            ("base_seed", Json::u64(self.header.base_seed)),
            (
                "jobs",
                Json::Arr(self.jobs.iter().map(job_to_json).collect()),
            ),
        ])
    }

    /// Deserializes a checkpoint document.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] on structural or version mismatch.
    pub fn from_json(value: &Json) -> Result<Checkpoint, ArtifactError> {
        let version = value
            .get("format_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ArtifactError::Malformed("missing format_version".into()))?;
        check_version(version)?;
        let header = CheckpointHeader {
            trials_per_pair: value
                .get("trials_per_pair")
                .and_then(Json::as_usize)
                .ok_or_else(|| ArtifactError::Malformed("bad trials_per_pair".into()))?,
            base_seed: value
                .get("base_seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| ArtifactError::Malformed("bad base_seed".into()))?,
        };
        let jobs = value
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or_else(|| ArtifactError::Malformed("bad jobs".into()))?
            .iter()
            .map(job_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Checkpoint { header, jobs })
    }

    /// Durably writes the checkpoint to `path`: CRC-footed, staged through
    /// a temp file, fsynced, atomically renamed (failpoint sites
    /// `campaign.checkpoint.{write,sync,rename}`).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let sealed = durable::seal(&self.to_json().to_text());
        durable::write_durable(path, "campaign.checkpoint", sealed.as_bytes())
            .map_err(|error| ArtifactError::Io(error.to_string()))
    }

    /// Loads a checkpoint from `path`, verifying the CRC footer (a v2
    /// checkpoint without one still loads).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] if the file is unreadable, torn, or
    /// invalid.
    pub fn load(path: &Path) -> Result<Checkpoint, ArtifactError> {
        let text =
            std::fs::read_to_string(path).map_err(|error| ArtifactError::Io(error.to_string()))?;
        let (value, _) = unseal_document(&text)?;
        Checkpoint::from_json(&value)
    }
}

fn pair_to_json(pair: &RacePair) -> Json {
    Json::Arr(vec![
        Json::u64(u64::from(pair.first().0)),
        Json::u64(u64::from(pair.second().0)),
    ])
}

fn pair_from_json(value: &Json) -> Result<RacePair, ArtifactError> {
    let items = value
        .as_arr()
        .filter(|items| items.len() == 2)
        .ok_or_else(|| ArtifactError::Malformed("bad pair".into()))?;
    let first = items[0]
        .as_u32()
        .ok_or_else(|| ArtifactError::Malformed("bad pair".into()))?;
    let second = items[1]
        .as_u32()
        .ok_or_else(|| ArtifactError::Malformed("bad pair".into()))?;
    Ok(RacePair::new(InstrId(first), InstrId(second)))
}

fn opt_u64(value: Option<u64>) -> Json {
    match value {
        Some(value) => Json::u64(value),
        None => Json::Null,
    }
}

fn report_to_json(report: &PairReport) -> Json {
    Json::obj(vec![
        ("target", pair_to_json(&report.target)),
        ("trials", Json::usize(report.trials)),
        ("hits", Json::usize(report.hits)),
        (
            "real_pairs",
            Json::Arr(report.real_pairs.iter().map(pair_to_json).collect()),
        ),
        ("exception_trials", Json::usize(report.exception_trials)),
        (
            "exceptions",
            Json::Obj(
                report
                    .exceptions
                    .iter()
                    .map(|(name, count)| (name.to_string(), Json::usize(*count)))
                    .collect(),
            ),
        ),
        ("deadlock_trials", Json::usize(report.deadlock_trials)),
        ("memory_trials", Json::usize(report.memory_trials)),
        ("first_hit_seed", opt_u64(report.first_hit_seed)),
        (
            "first_exception_seed",
            opt_u64(report.first_exception_seed),
        ),
    ])
}

fn report_from_json(value: &Json) -> Result<PairReport, ArtifactError> {
    let field = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| ArtifactError::Malformed(format!("report missing '{key}'")))
    };
    let usize_field = |key: &str| -> Result<usize, ArtifactError> {
        field(key)?
            .as_usize()
            .ok_or_else(|| ArtifactError::Malformed(format!("bad report field '{key}'")))
    };
    let real_pairs: BTreeSet<RacePair> = field("real_pairs")?
        .as_arr()
        .ok_or_else(|| ArtifactError::Malformed("bad real_pairs".into()))?
        .iter()
        .map(pair_from_json)
        .collect::<Result<_, _>>()?;
    // Keys re-enter the shared-`Arc<str>` representation the reports use
    // in memory; a resumed report therefore merges with live reports
    // without any key-type conversion.
    let exceptions: BTreeMap<std::sync::Arc<str>, usize> = match field("exceptions")? {
        Json::Obj(fields) => fields
            .iter()
            .map(|(name, count)| {
                count
                    .as_usize()
                    .map(|count| (std::sync::Arc::from(name.as_str()), count))
                    .ok_or_else(|| ArtifactError::Malformed("bad exception count".into()))
            })
            .collect::<Result<_, _>>()?,
        _ => return Err(ArtifactError::Malformed("bad exceptions".into())),
    };
    let mut report = PairReport::empty(pair_from_json(field("target")?)?);
    report.trials = usize_field("trials")?;
    report.hits = usize_field("hits")?;
    report.real_pairs = real_pairs;
    report.exception_trials = usize_field("exception_trials")?;
    report.exceptions = exceptions;
    report.deadlock_trials = usize_field("deadlock_trials")?;
    // Absent in format v2 checkpoints, which predate the heap budget.
    report.memory_trials = value
        .get("memory_trials")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    report.first_hit_seed = value.get("first_hit_seed").and_then(Json::as_u64);
    report.first_exception_seed = value.get("first_exception_seed").and_then(Json::as_u64);
    Ok(report)
}

fn failure_to_json(failure: &TrialFailure) -> Json {
    Json::obj(vec![
        ("pair", pair_to_json(&failure.pair)),
        ("seed", Json::u64(failure.seed)),
        ("attempt", Json::u64(u64::from(failure.attempt))),
        ("step_budget", Json::u64(failure.step_budget)),
        ("kind", Json::str(failure.kind.tag())),
        (
            "message",
            match failure.kind.message() {
                Some(message) => Json::str(message),
                None => Json::Null,
            },
        ),
    ])
}

fn failure_from_json(value: &Json) -> Result<TrialFailure, ArtifactError> {
    let kind_tag = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ArtifactError::Malformed("bad failure kind".into()))?;
    let message = value.get("message").and_then(Json::as_str);
    let kind = failure_kind_from_parts(kind_tag, message)?;
    Ok(TrialFailure {
        pair: pair_from_json(
            value
                .get("pair")
                .ok_or_else(|| ArtifactError::Malformed("failure missing pair".into()))?,
        )?,
        seed: value
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| ArtifactError::Malformed("bad failure seed".into()))?,
        attempt: value
            .get("attempt")
            .and_then(Json::as_u32)
            .ok_or_else(|| ArtifactError::Malformed("bad failure attempt".into()))?,
        step_budget: value
            .get("step_budget")
            .and_then(Json::as_u64)
            .ok_or_else(|| ArtifactError::Malformed("bad failure step_budget".into()))?,
        kind,
    })
}

fn failure_kind_from_parts(
    tag: &str,
    message: Option<&str>,
) -> Result<FailureKind, ArtifactError> {
    FailureKind::from_parts(tag, message)
        .ok_or_else(|| ArtifactError::Malformed(format!("unknown failure kind '{tag}'")))
}

fn quarantine_to_json(entry: &QuarantinedPair) -> Json {
    Json::obj(vec![
        ("pair", pair_to_json(&entry.pair)),
        ("seed", Json::u64(entry.seed)),
        ("attempts", Json::u64(u64::from(entry.attempts))),
        ("reason", Json::str(entry.reason.tag())),
        ("detail", Json::Str(entry.reason.detail())),
    ])
}

fn quarantine_reason_from_parts(
    tag: &str,
    detail: &str,
) -> Result<QuarantineReason, ArtifactError> {
    match tag {
        "trial_failures" => Ok(QuarantineReason::TrialFailures(detail.to_owned())),
        "statically_pruned" => PruneReason::from_tag(detail)
            .map(QuarantineReason::StaticallyPruned)
            .ok_or_else(|| ArtifactError::Malformed(format!("unknown prune reason '{detail}'"))),
        "crash_loop" => detail
            .parse::<u32>()
            .map(QuarantineReason::CrashLoop)
            .map_err(|_| ArtifactError::Malformed(format!("bad crash_loop count '{detail}'"))),
        "corrupt_artifact" => Ok(QuarantineReason::CorruptArtifact(detail.to_owned())),
        _ => Err(ArtifactError::Malformed(format!(
            "unknown quarantine reason '{tag}'"
        ))),
    }
}

fn quarantine_from_json(value: &Json) -> Result<QuarantinedPair, ArtifactError> {
    let tag = value
        .get("reason")
        .and_then(Json::as_str)
        .ok_or_else(|| ArtifactError::Malformed("bad quarantine reason".into()))?;
    let detail = value.get("detail").and_then(Json::as_str).unwrap_or("");
    Ok(QuarantinedPair {
        pair: pair_from_json(
            value
                .get("pair")
                .ok_or_else(|| ArtifactError::Malformed("quarantine missing pair".into()))?,
        )?,
        seed: value
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| ArtifactError::Malformed("bad quarantine seed".into()))?,
        attempts: value
            .get("attempts")
            .and_then(Json::as_u32)
            .ok_or_else(|| ArtifactError::Malformed("bad quarantine attempts".into()))?,
        reason: quarantine_reason_from_parts(tag, detail)?,
    })
}

pub(crate) fn job_to_json(job: &JobOutcome) -> Json {
    Json::obj(vec![
        ("name", Json::str(&job.name)),
        ("entry", Json::str(&job.entry)),
        (
            "program_digest",
            Json::Str(format!("{:016x}", job.program_digest)),
        ),
        ("predicted", Json::Bool(job.predicted)),
        (
            "potential",
            Json::Arr(job.potential.iter().map(pair_to_json).collect()),
        ),
        (
            "provenance",
            Json::Arr(
                job.provenance
                    .iter()
                    .map(|p| Json::str(p.tag()))
                    .collect(),
            ),
        ),
        (
            "reports",
            Json::Arr(job.reports.iter().map(report_to_json).collect()),
        ),
        (
            "quarantined",
            Json::Arr(job.quarantined.iter().map(quarantine_to_json).collect()),
        ),
        (
            "soundness_bugs",
            Json::Arr(job.soundness_bugs.iter().map(|bug| Json::str(bug)).collect()),
        ),
        (
            "failures",
            Json::Arr(job.failures.iter().map(failure_to_json).collect()),
        ),
        ("next_pair", Json::usize(job.next_pair)),
        (
            "error",
            match &job.error {
                Some(message) => Json::str(message),
                None => Json::Null,
            },
        ),
        ("done", Json::Bool(job.done)),
    ])
}

fn job_from_json(value: &Json) -> Result<JobOutcome, ArtifactError> {
    let field = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| ArtifactError::Malformed(format!("job missing '{key}'")))
    };
    let digest_text = field("program_digest")?
        .as_str()
        .ok_or_else(|| ArtifactError::Malformed("bad program_digest".into()))?;
    let potential: Vec<RacePair> = field("potential")?
        .as_arr()
        .ok_or_else(|| ArtifactError::Malformed("bad potential".into()))?
        .iter()
        .map(pair_from_json)
        .collect::<Result<_, _>>()?;
    // Pre-provenance checkpoints have no `provenance` array; every pair in
    // them came from dynamic Phase 1.
    let provenance = match value.get("provenance") {
        Some(entry) => entry
            .as_arr()
            .ok_or_else(|| ArtifactError::Malformed("bad provenance".into()))?
            .iter()
            .map(|p| {
                p.as_str()
                    .and_then(Provenance::from_tag)
                    .ok_or_else(|| ArtifactError::Malformed("bad provenance tag".into()))
            })
            .collect::<Result<_, _>>()?,
        None => vec![Provenance::Dynamic; potential.len()],
    };
    Ok(JobOutcome {
        name: field("name")?
            .as_str()
            .ok_or_else(|| ArtifactError::Malformed("bad job name".into()))?
            .to_owned(),
        entry: field("entry")?
            .as_str()
            .ok_or_else(|| ArtifactError::Malformed("bad job entry".into()))?
            .to_owned(),
        program_digest: u64::from_str_radix(digest_text, 16)
            .map_err(|_| ArtifactError::Malformed("bad program_digest".into()))?,
        predicted: field("predicted")?
            .as_bool()
            .ok_or_else(|| ArtifactError::Malformed("bad predicted".into()))?,
        potential,
        provenance,
        reports: field("reports")?
            .as_arr()
            .ok_or_else(|| ArtifactError::Malformed("bad reports".into()))?
            .iter()
            .map(report_from_json)
            .collect::<Result<_, _>>()?,
        quarantined: field("quarantined")?
            .as_arr()
            .ok_or_else(|| ArtifactError::Malformed("bad quarantined".into()))?
            .iter()
            .map(quarantine_from_json)
            .collect::<Result<_, _>>()?,
        soundness_bugs: field("soundness_bugs")?
            .as_arr()
            .ok_or_else(|| ArtifactError::Malformed("bad soundness_bugs".into()))?
            .iter()
            .map(|bug| {
                bug.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| ArtifactError::Malformed("bad soundness bug".into()))
            })
            .collect::<Result<_, _>>()?,
        failures: field("failures")?
            .as_arr()
            .ok_or_else(|| ArtifactError::Malformed("bad failures".into()))?
            .iter()
            .map(failure_from_json)
            .collect::<Result<_, _>>()?,
        next_pair: field("next_pair")?
            .as_usize()
            .ok_or_else(|| ArtifactError::Malformed("bad next_pair".into()))?,
        error: value.get("error").and_then(Json::as_str).map(str::to_owned),
        done: field("done")?
            .as_bool()
            .ok_or_else(|| ArtifactError::Malformed("bad done".into()))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_job() -> JobOutcome {
        let pair = RacePair::new(InstrId(2), InstrId(9));
        let mut report = PairReport::empty(pair);
        report.trials = 7;
        report.hits = 3;
        report.real_pairs.insert(pair);
        report.exception_trials = 1;
        report.exceptions.insert(std::sync::Arc::from("Error1"), 1);
        report.first_hit_seed = Some(4);
        report.first_exception_seed = Some(6);
        JobOutcome {
            name: "figure1".to_owned(),
            entry: "main".to_owned(),
            program_digest: 0xdead_beef_0000_1111,
            predicted: true,
            potential: vec![pair],
            provenance: vec![Provenance::Both],
            reports: vec![report],
            quarantined: vec![
                QuarantinedPair {
                    pair,
                    seed: 11,
                    attempts: 3,
                    reason: QuarantineReason::TrialFailures("step_budget".to_owned()),
                },
                QuarantinedPair {
                    pair,
                    seed: 1,
                    attempts: 0,
                    reason: QuarantineReason::StaticallyPruned(PruneReason::MhpImpossible),
                },
                QuarantinedPair {
                    pair,
                    seed: 2,
                    attempts: 0,
                    reason: QuarantineReason::StaticallyPruned(PruneReason::FootprintNoAlias),
                },
            ],
            soundness_bugs: vec!["pair #2/#9 confirmed but refuted".to_owned()],
            failures: vec![TrialFailure {
                pair,
                seed: 11,
                attempt: 2,
                step_budget: 2048,
                kind: FailureKind::Panic("boom".to_owned()),
            }],
            next_pair: 1,
            error: None,
            done: false,
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let checkpoint = Checkpoint {
            header: CheckpointHeader {
                trials_per_pair: 25,
                base_seed: 1,
            },
            jobs: vec![sample_job()],
        };
        let text = checkpoint.to_json().to_text();
        let loaded = Checkpoint::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(loaded.header, checkpoint.header);
        assert_eq!(
            format!("{:?}", loaded.jobs),
            format!("{:?}", checkpoint.jobs)
        );
        // Canonical writing: serialize(parse(text)) == text.
        assert_eq!(loaded.to_json().to_text(), text);
    }

    #[test]
    fn atomic_save_then_load() {
        let dir = std::env::temp_dir().join("campaign-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let checkpoint = Checkpoint {
            header: CheckpointHeader {
                trials_per_pair: 5,
                base_seed: 9,
            },
            jobs: vec![sample_job()],
        };
        checkpoint.save(&path).unwrap();
        assert!(!durable::tmp_path(&path).exists());
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.header, checkpoint.header);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_checkpoint_is_rejected_not_trusted() {
        let dir = std::env::temp_dir().join(format!("campaign-torn-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let checkpoint = Checkpoint {
            header: CheckpointHeader {
                trials_per_pair: 5,
                base_seed: 9,
            },
            jobs: vec![sample_job()],
        };
        checkpoint.save(&path).unwrap();
        // Simulate a torn write: drop the second half of the file.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_checkpoint_without_footer_still_loads() {
        let dir = std::env::temp_dir().join(format!("campaign-v2-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let checkpoint = Checkpoint {
            header: CheckpointHeader {
                trials_per_pair: 5,
                base_seed: 9,
            },
            jobs: vec![sample_job()],
        };
        // Rewrite the document the way a v2 build would have: version 2,
        // no memory_trials line, bare JSON with no CRC footer. (The
        // memory_trials line carries a trailing comma, so dropping the
        // whole line keeps the JSON valid.)
        let text: String = checkpoint
            .to_json()
            .to_text()
            .replace("\"format_version\": 3,", "\"format_version\": 2,")
            .lines()
            .filter(|line| !line.trim_start().starts_with("\"memory_trials\""))
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&path, text).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.header, checkpoint.header);
        assert_eq!(loaded.jobs[0].reports[0].memory_trials, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
