//! A deliberately small JSON reader/writer.
//!
//! Artifacts and checkpoints must be self-contained text files, but the
//! build environment is offline so no serialization crate is available.
//! This module implements exactly the JSON subset the campaign emits:
//! objects, arrays, strings, booleans, null, and integers (every number in
//! an artifact — seeds, budgets, statement ids, counters — is an integer;
//! floats are never written, so the parser rejects them and the writer has
//! no float case to get wrong).
//!
//! Writing is canonical: object keys keep insertion order, no whitespace
//! choices to diverge on, so "byte-identical reports after resume" is a
//! meaningful test at the file level too.

use std::fmt::Write as _;

/// A parsed JSON value (integer-only numbers).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Stored as `i128` so every `u64` and `i64` round-trips.
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (not sorted: canonical writing).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(key, value)| (key.to_owned(), value))
                .collect(),
        )
    }

    /// `u64` → number.
    pub fn u64(value: u64) -> Json {
        Json::Int(value as i128)
    }

    /// `usize` → number.
    pub fn usize(value: usize) -> Json {
        Json::Int(value as i128)
    }

    /// String → value.
    pub fn str(value: &str) -> Json {
        Json::Str(value.to_owned())
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(value) => u64::try_from(*value).ok(),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a number in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Int(value) => usize::try_from(*value).ok(),
            _ => None,
        }
    }

    /// The value as `u32`, if it is a number in range.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Int(value) => u32::try_from(*value).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(value) => Some(value.as_str()),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(value) => {
                let _ = write!(out, "{value}");
            }
            Json::Str(value) => write_string(out, value),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (index, (key, value)) in fields.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", ch as u32);
            }
            ch => out.push(ch),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset at which it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.error("non-integer numbers are not used by this format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| self.error("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogates never appear in our own output
                            // (write_string only \u-escapes control bytes);
                            // map a foreign one to U+FFFD rather than fail.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode from the byte position: strings are UTF-8.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos - 1..]).map_err(|_| {
                            self.error("invalid UTF-8 in string")
                        })?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.error("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.error("invalid \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let value = Json::obj(vec![
            ("name", Json::str("fig\"ure\n1")),
            ("seed", Json::u64(u64::MAX)),
            ("negative", Json::Int(-42)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::u64(1), Json::str("two"), Json::Arr(vec![])]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = value.to_text();
        assert_eq!(parse(&text).unwrap(), value);
        // Canonical: re-serializing the parse is byte-identical.
        assert_eq!(parse(&text).unwrap().to_text(), text);
    }

    #[test]
    fn escapes_control_characters() {
        let value = Json::str("a\u{1}b");
        let text = value.to_text();
        assert!(text.contains("\\u0001"));
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} tail").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_unicode_text() {
        let value = Json::str("λ → ✓");
        assert_eq!(parse(&value.to_text()).unwrap(), value);
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::str("é"));
    }
}
