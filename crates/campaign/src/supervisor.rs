//! The self-healing supervisor loop and its crash ledger.
//!
//! A campaign process can die outright — an injected abort, an OOM kill, a
//! real segfault in the engine. Checkpoint/resume already makes the *state*
//! survive; this module makes the *run* survive: [`supervise`] restarts the
//! child after each abnormal exit with exponential backoff, resetting the
//! backoff whenever the checkpoint cursor shows forward progress.
//!
//! The pathological case is a pair whose trials deterministically kill the
//! process: resume alone would re-run it forever. The supervisor watches
//! the checkpoint cursor across crashes; when the same in-flight pair is on
//! deck for [`SupervisorOptions::crash_quarantine_threshold`] consecutive
//! crashes, it records the pair in the **crash ledger** — a durable,
//! CRC-footed file the next campaign run loads and obeys, quarantining the
//! pair with [`crate::QuarantineReason::CrashLoop`] before running a single
//! trial of it.
//!
//! The child abstraction is a trait so unit tests can supervise a closure;
//! the `campaign-torture` binary supervises a real re-exec'd process.

use crate::artifact::{check_version, unseal_document, ArtifactError, FORMAT_VERSION};
use crate::checkpoint::Checkpoint;
use crate::durable;
use crate::json::Json;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One crash-loop quarantine decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Job whose pair kept killing the process.
    pub job: String,
    /// Index into the job's `potential` list (the checkpoint cursor value
    /// at each crash).
    pub pair_index: usize,
    /// Consecutive crashes observed on this pair before quarantining.
    pub crashes: u32,
}

/// The durable crash ledger: instructions from the supervisor to future
/// campaign runs about pairs that must not be fuzzed in-process again.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashLedger {
    /// Quarantine instructions, in the order they were decided.
    pub entries: Vec<LedgerEntry>,
}

impl CrashLedger {
    /// A ledger with no entries.
    pub fn empty() -> Self {
        CrashLedger::default()
    }

    /// The crash count for `(job, pair_index)`, if the pair is listed.
    pub fn lookup(&self, job: &str, pair_index: usize) -> Option<u32> {
        self.entries
            .iter()
            .find(|entry| entry.job == job && entry.pair_index == pair_index)
            .map(|entry| entry.crashes)
    }

    /// Adds or updates an entry.
    pub fn note(&mut self, job: &str, pair_index: usize, crashes: u32) {
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|entry| entry.job == job && entry.pair_index == pair_index)
        {
            entry.crashes = entry.crashes.max(crashes);
        } else {
            self.entries.push(LedgerEntry {
                job: job.to_owned(),
                pair_index,
                crashes,
            });
        }
    }

    /// Serializes the ledger document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("format_version", Json::u64(FORMAT_VERSION)),
            (
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|entry| {
                            Json::obj(vec![
                                ("job", Json::str(&entry.job)),
                                ("pair_index", Json::usize(entry.pair_index)),
                                ("crashes", Json::u64(u64::from(entry.crashes))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a ledger document.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] on structural or version mismatch.
    pub fn from_json(value: &Json) -> Result<CrashLedger, ArtifactError> {
        let version = value
            .get("format_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ArtifactError::Malformed("missing format_version".into()))?;
        check_version(version)?;
        let entries = value
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| ArtifactError::Malformed("bad ledger entries".into()))?
            .iter()
            .map(|entry| {
                Ok(LedgerEntry {
                    job: entry
                        .get("job")
                        .and_then(Json::as_str)
                        .ok_or_else(|| ArtifactError::Malformed("bad ledger job".into()))?
                        .to_owned(),
                    pair_index: entry
                        .get("pair_index")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| ArtifactError::Malformed("bad ledger pair_index".into()))?,
                    crashes: entry
                        .get("crashes")
                        .and_then(Json::as_u32)
                        .ok_or_else(|| ArtifactError::Malformed("bad ledger crashes".into()))?,
                })
            })
            .collect::<Result<Vec<_>, ArtifactError>>()?;
        Ok(CrashLedger { entries })
    }

    /// Durably writes the ledger (failpoint sites
    /// `campaign.ledger.{write,sync,rename}`).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let sealed = durable::seal(&self.to_json().to_text());
        durable::write_durable(path, "campaign.ledger", sealed.as_bytes())
            .map_err(|error| ArtifactError::Io(error.to_string()))
    }

    /// Loads a ledger, verifying the CRC footer.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] if the file is unreadable, torn, or
    /// invalid.
    pub fn load(path: &Path) -> Result<CrashLedger, ArtifactError> {
        let text =
            std::fs::read_to_string(path).map_err(|error| ArtifactError::Io(error.to_string()))?;
        let (value, _) = unseal_document(&text)?;
        CrashLedger::from_json(&value)
    }
}

/// How one child invocation ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChildExit {
    /// The child finished its campaign (exit 0).
    Clean,
    /// The child died abnormally; the payload describes the exit status.
    Crashed(String),
}

/// One supervisable unit of campaign work. The torture binary implements
/// this by re-exec'ing itself; unit tests implement it with closures.
pub trait Child {
    /// Runs the child once. `attempt` is 1-based.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] only for supervisor-level failures
    /// (cannot spawn at all) — a crashing child is a [`ChildExit::Crashed`],
    /// not an error.
    fn run(&mut self, attempt: u32) -> std::io::Result<ChildExit>;
}

impl<F> Child for F
where
    F: FnMut(u32) -> std::io::Result<ChildExit>,
{
    fn run(&mut self, attempt: u32) -> std::io::Result<ChildExit> {
        self(attempt)
    }
}

/// Tunables for [`supervise`].
#[derive(Clone, Debug)]
pub struct SupervisorOptions {
    /// The campaign's checkpoint file — the supervisor reads (never
    /// writes) it to measure progress between crashes.
    pub checkpoint_path: PathBuf,
    /// Where crash-loop quarantine decisions are recorded.
    pub ledger_path: PathBuf,
    /// Append-only human-readable recovery log; `None` disables logging.
    pub log_path: Option<PathBuf>,
    /// Abnormal exits tolerated before the supervisor gives up.
    pub max_restarts: u32,
    /// Backoff before the first restart (and after any crash that made
    /// progress).
    pub initial_backoff: Duration,
    /// Backoff multiplier for consecutive crashes without progress.
    pub backoff_factor: u32,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Consecutive crashes on the same in-flight pair before it is written
    /// to the crash ledger.
    pub crash_quarantine_threshold: u32,
}

impl SupervisorOptions {
    /// Defaults for the given state paths.
    pub fn new(checkpoint_path: PathBuf, ledger_path: PathBuf) -> Self {
        SupervisorOptions {
            checkpoint_path,
            ledger_path,
            log_path: None,
            max_restarts: 64,
            initial_backoff: Duration::from_millis(10),
            backoff_factor: 2,
            max_backoff: Duration::from_secs(2),
            crash_quarantine_threshold: 3,
        }
    }
}

/// What a supervision run did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupervisorOutcome {
    /// Child invocations (including the final clean one, if any).
    pub attempts: u32,
    /// Abnormal child exits observed.
    pub crashes: u32,
    /// Crash-loop pairs written to the ledger by this supervision run.
    pub quarantined: u32,
    /// `true` if `max_restarts` was exhausted before a clean exit.
    pub gave_up: bool,
}

/// The per-job progress fingerprint used to compare checkpoints across
/// crashes: `(job name, next_pair, done)` for every job.
type Cursor = Vec<(String, usize, bool)>;

fn read_cursor(path: &Path) -> Option<Cursor> {
    let checkpoint = Checkpoint::load(path).ok()?;
    Some(
        checkpoint
            .jobs
            .iter()
            .map(|job| (job.name.clone(), job.next_pair, job.done))
            .collect(),
    )
}

/// The pair the child was working on when it crashed: the cursor of the
/// first unfinished job.
fn in_flight(cursor: &Cursor) -> Option<(&str, usize)> {
    cursor
        .iter()
        .find(|(_, _, done)| !done)
        .map(|(job, next_pair, _)| (job.as_str(), *next_pair))
}

fn log_line(options: &SupervisorOptions, line: &str) {
    let Some(path) = &options.log_path else {
        return;
    };
    if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(file, "{line}");
    }
}

/// Runs `child` to completion, restarting it after abnormal exits with
/// exponential backoff and quarantining crash-looping pairs via the ledger.
///
/// # Errors
///
/// Returns [`std::io::Error`] only if the child cannot be started at all;
/// crashes are handled, counted, and survived.
pub fn supervise(
    child: &mut dyn Child,
    options: &SupervisorOptions,
) -> std::io::Result<SupervisorOutcome> {
    let mut outcome = SupervisorOutcome {
        attempts: 0,
        crashes: 0,
        quarantined: 0,
        gave_up: false,
    };
    let mut backoff = options.initial_backoff;
    let mut last_cursor: Option<Cursor> = None;
    let mut consecutive: u32 = 0;
    loop {
        outcome.attempts += 1;
        let status = child.run(outcome.attempts)?;
        match status {
            ChildExit::Clean => {
                log_line(
                    options,
                    &format!(
                        "clean exit on attempt {} after {} crash(es)",
                        outcome.attempts, outcome.crashes
                    ),
                );
                return Ok(outcome);
            }
            ChildExit::Crashed(status) => {
                outcome.crashes += 1;
                let cursor = read_cursor(&options.checkpoint_path);
                let progressed = cursor != last_cursor;
                if progressed {
                    consecutive = 1;
                    backoff = options.initial_backoff;
                } else {
                    consecutive += 1;
                    backoff = backoff
                        .saturating_mul(options.backoff_factor.max(1))
                        .min(options.max_backoff);
                }
                log_line(
                    options,
                    &format!(
                        "crash #{} on attempt {} ({status}); progressed={progressed} \
                         consecutive={consecutive} backoff={}ms",
                        outcome.crashes,
                        outcome.attempts,
                        backoff.as_millis()
                    ),
                );
                if outcome.crashes > options.max_restarts {
                    outcome.gave_up = true;
                    log_line(
                        options,
                        &format!("giving up after {} crashes", outcome.crashes),
                    );
                    return Ok(outcome);
                }
                if consecutive >= options.crash_quarantine_threshold {
                    if let Some((job, pair_index)) = cursor.as_ref().and_then(|c| in_flight(c)) {
                        let mut ledger = CrashLedger::load(&options.ledger_path)
                            .unwrap_or_else(|_| CrashLedger::empty());
                        ledger.note(job, pair_index, consecutive);
                        if ledger.save(&options.ledger_path).is_ok() {
                            outcome.quarantined += 1;
                            log_line(
                                options,
                                &format!(
                                    "quarantining {job} pair #{pair_index} after \
                                     {consecutive} consecutive crashes"
                                ),
                            );
                            // Give the next run (which will skip the pair) a
                            // fresh crash budget.
                            consecutive = 0;
                        }
                    }
                }
                last_cursor = cursor;
                std::thread::sleep(backoff);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("supervisor-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn options(dir: &Path) -> SupervisorOptions {
        SupervisorOptions {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..SupervisorOptions::new(dir.join("checkpoint.json"), dir.join("ledger.json"))
        }
    }

    #[test]
    fn ledger_round_trips_durably() {
        let dir = scratch("ledger");
        let path = dir.join("ledger.json");
        let mut ledger = CrashLedger::empty();
        ledger.note("fig1", 3, 4);
        ledger.note("fig2", 0, 3);
        ledger.note("fig1", 3, 2); // keeps the max
        ledger.save(&path).unwrap();
        let loaded = CrashLedger::load(&path).unwrap();
        assert_eq!(loaded, ledger);
        assert_eq!(loaded.lookup("fig1", 3), Some(4));
        assert_eq!(loaded.lookup("fig1", 4), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn supervisor_restarts_until_clean() {
        let dir = scratch("restarts");
        let mut runs = 0u32;
        let outcome = supervise(
            &mut |attempt: u32| {
                runs += 1;
                Ok(if attempt < 4 {
                    ChildExit::Crashed("signal 6".to_owned())
                } else {
                    ChildExit::Clean
                })
            },
            &options(&dir),
        )
        .unwrap();
        assert_eq!(runs, 4);
        assert_eq!(outcome.attempts, 4);
        assert_eq!(outcome.crashes, 3);
        assert!(!outcome.gave_up);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn supervisor_gives_up_at_max_restarts() {
        let dir = scratch("gives-up");
        let opts = SupervisorOptions {
            max_restarts: 5,
            ..options(&dir)
        };
        let outcome = supervise(
            &mut |_: u32| Ok(ChildExit::Crashed("always".to_owned())),
            &opts,
        )
        .unwrap();
        assert!(outcome.gave_up);
        assert_eq!(outcome.crashes, 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_crashes_on_one_pair_reach_the_ledger() {
        let dir = scratch("crash-loop");
        let opts = SupervisorOptions {
            max_restarts: 10,
            ..options(&dir)
        };
        // A fake checkpoint that never advances: job "stuck" is forever at
        // pair 2.
        let checkpoint_path = opts.checkpoint_path.clone();
        let write_stuck_checkpoint = {
            let text = r#"{
  "format_version": 2,
  "trials_per_pair": 5,
  "base_seed": 1,
  "jobs": [
    {
      "name": "stuck", "entry": "main", "program_digest": "0000000000000001",
      "predicted": true, "potential": [[0, 1], [2, 3], [4, 5], [6, 7]],
      "reports": [], "quarantined": [], "soundness_bugs": [], "failures": [],
      "next_pair": 2, "error": null, "done": false
    }
  ]
}"#;
            move || std::fs::write(&checkpoint_path, text).unwrap()
        };
        let outcome = supervise(
            &mut |attempt: u32| {
                write_stuck_checkpoint();
                Ok(if attempt < 5 {
                    ChildExit::Crashed("abort".to_owned())
                } else {
                    ChildExit::Clean
                })
            },
            &opts,
        )
        .unwrap();
        assert!(outcome.quarantined >= 1);
        let ledger = CrashLedger::load(&opts.ledger_path).unwrap();
        assert_eq!(ledger.lookup("stuck", 2), Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_resets_the_crash_count() {
        let dir = scratch("progress");
        let opts = SupervisorOptions {
            max_restarts: 20,
            ..options(&dir)
        };
        // The cursor advances on every crash: never the same pair twice, so
        // nothing should ever be quarantined.
        let checkpoint_path = opts.checkpoint_path.clone();
        let outcome = supervise(
            &mut |attempt: u32| {
                let text = format!(
                    r#"{{
  "format_version": 2,
  "trials_per_pair": 5,
  "base_seed": 1,
  "jobs": [
    {{
      "name": "moving", "entry": "main", "program_digest": "0000000000000001",
      "predicted": true, "potential": [[0, 1], [2, 3], [4, 5], [6, 7], [8, 9], [10, 11], [12, 13], [14, 15]],
      "reports": [], "quarantined": [], "soundness_bugs": [], "failures": [],
      "next_pair": {attempt}, "error": null, "done": false
    }}
  ]
}}"#
                );
                std::fs::write(&checkpoint_path, text).unwrap();
                Ok(if attempt < 7 {
                    ChildExit::Crashed("abort".to_owned())
                } else {
                    ChildExit::Clean
                })
            },
            &opts,
        )
        .unwrap();
        assert_eq!(outcome.quarantined, 0);
        assert!(!opts.ledger_path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
