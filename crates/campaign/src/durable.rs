//! Torn-write-tolerant durable state: the one write discipline every
//! campaign file goes through.
//!
//! A campaign's durable state (checkpoints, failure artifacts, the crash
//! ledger) must survive a kill at an *arbitrary instant*. This module
//! provides the two halves of that guarantee:
//!
//! * [`write_durable`] — temp file → `fsync` → atomic rename → best-effort
//!   directory sync, with named failpoint sites (`<prefix>.write`,
//!   `<prefix>.sync`, `<prefix>.rename`) on each step and **one retry**
//!   with a fresh temp file on transient failure, so a single injected
//!   `EIO` self-heals without a restart.
//! * [`seal`] / [`unseal`] — a CRC-32 footer (`#crc32=XXXXXXXX`) appended
//!   to every document, so a *published* torn file (short write + crash,
//!   or a lying disk) is detected at read time and sidelined by the
//!   recovery scan instead of being trusted or panicking the loader.
//!
//! The rename is what makes the write atomic; the fsync before it is what
//! makes the rename meaningful (no file visible with unwritten contents);
//! the CRC is the backstop for the failure modes fsync cannot promise
//! away.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE, reflected — the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Small table built on first use; this is cold I/O-path code.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    0xedb8_8320 ^ (crc >> 1)
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xffff_ffffu32;
    for &byte in bytes {
        crc = table[((crc ^ u32::from(byte)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The footer marker sealing a durable document.
pub const CRC_FOOTER: &str = "#crc32=";

/// Appends the CRC-32 footer line to `body`.
pub fn seal(body: &str) -> String {
    format!("{body}\n{CRC_FOOTER}{:08x}\n", crc32(body.as_bytes()))
}

/// A successfully unsealed document.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unsealed<'a> {
    /// The document carried a valid CRC footer.
    Sealed(&'a str),
    /// No footer at all — a legacy (pre-CRC, format v2) document. The
    /// caller decides whether that is acceptable for the claimed format
    /// version.
    Legacy(&'a str),
}

impl<'a> Unsealed<'a> {
    /// The document body either way.
    pub fn body(&self) -> &'a str {
        match self {
            Unsealed::Sealed(body) | Unsealed::Legacy(body) => body,
        }
    }
}

/// Splits and verifies the CRC footer.
///
/// # Errors
///
/// Returns a description if a footer is present but wrong — a torn or
/// bit-flipped file, never to be trusted.
pub fn unseal(text: &str) -> Result<Unsealed<'_>, String> {
    let trimmed = text.trim_end_matches(['\n', '\r']);
    let Some(at) = trimmed.rfind(&format!("\n{CRC_FOOTER}")) else {
        // A footer fragment with no preceding newline (torn at byte 0 of
        // the body) can only be the degenerate empty document; treat any
        // leading footer as corruption too.
        if trimmed.starts_with(CRC_FOOTER) {
            return Err("document is only a CRC footer".to_owned());
        }
        return Ok(Unsealed::Legacy(text));
    };
    let body = &trimmed[..at];
    let footer = &trimmed[at + 1 + CRC_FOOTER.len()..];
    let Ok(expected) = u32::from_str_radix(footer.trim(), 16) else {
        return Err(format!("unparsable CRC footer '{footer}'"));
    };
    let actual = crc32(body.as_bytes());
    if actual != expected {
        return Err(format!(
            "CRC mismatch: footer says {expected:08x}, content hashes to {actual:08x} (torn or corrupt write)"
        ));
    }
    Ok(Unsealed::Sealed(body))
}

/// The temp-file path `write_durable` stages through (also what the
/// recovery scan sweeps for).
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

fn injected(site: &str) -> io::Error {
    io::Error::other(format!("injected fault at {site}"))
}

/// Writes `bytes` to `path` with the full durability discipline, emulating
/// any fault scheduled on `<site_prefix>.{write,sync,rename}`. A transient
/// failure (injected or real) is retried once with a fresh temp file.
///
/// A scheduled *short write* is **not** an error: the truncated bytes go
/// through the rest of the pipeline and get published, exactly like a torn
/// write surviving a crash — it is the reader's CRC check that must catch
/// it.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] if both attempts fail.
pub fn write_durable(path: &Path, site_prefix: &str, bytes: &[u8]) -> io::Result<()> {
    let mut last = None;
    for _ in 0..2 {
        match write_once(path, site_prefix, bytes) {
            Ok(()) => return Ok(()),
            Err(error) => last = Some(error),
        }
    }
    Err(last.expect("two attempts, so a last error"))
}

fn write_once(path: &Path, site_prefix: &str, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    let write_site = format!("{site_prefix}.write");
    let payload: &[u8] = match faults::hit(&write_site) {
        faults::Fault::None => bytes,
        faults::Fault::Error => return Err(injected(&write_site)),
        faults::Fault::ShortWrite(keep) => &bytes[..bytes.len().min(keep as usize)],
    };
    let mut file = File::create(&tmp)?;
    file.write_all(payload)?;
    let sync_site = format!("{site_prefix}.sync");
    match faults::hit(&sync_site) {
        faults::Fault::Error => return Err(injected(&sync_site)),
        _ => file.sync_all()?,
    }
    drop(file);
    let rename_site = format!("{site_prefix}.rename");
    if faults::hit(&rename_site) == faults::Fault::Error {
        return Err(injected(&rename_site));
    }
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable. Failure here is not worth a retry
    // loop: the data is safe, only the directory entry might replay.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_unseal_round_trips() {
        let body = "{\"hello\": 1}";
        let sealed = seal(body);
        assert_eq!(unseal(&sealed).unwrap(), Unsealed::Sealed(body));
    }

    #[test]
    fn unsealed_legacy_documents_pass_through() {
        let body = "{\"format_version\": 2}";
        assert_eq!(unseal(body).unwrap(), Unsealed::Legacy(body));
    }

    #[test]
    fn torn_documents_are_rejected() {
        let sealed = seal("{\"a\": [1, 2, 3]}");
        // Flip one content byte: footer no longer matches.
        let mut bytes = sealed.clone().into_bytes();
        bytes[2] ^= 0x20;
        let flipped = String::from_utf8(bytes).unwrap();
        assert!(unseal(&flipped).is_err());
        // Truncation that keeps the footer marker but cuts the body.
        let cut = format!("{}{}", &sealed[..4], &sealed[sealed.len() - 17..]);
        assert!(unseal(&cut).is_err());
    }

    #[test]
    fn durable_write_then_read() {
        let dir = std::env::temp_dir().join(format!("durable-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        write_durable(&path, "test.durable", seal("{\"x\": 1}").as_bytes()).unwrap();
        assert!(!tmp_path(&path).exists());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(unseal(&text).unwrap().body(), "{\"x\": 1}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
