//! Integration tests for the fault-tolerant campaign driver: budgets with
//! retry/quarantine, panic isolation with replayable artifacts, and
//! checkpoint/resume identity.

use campaign::{
    program_digest, ArtifactError, Campaign, CampaignJob, CampaignOptions, FailureArtifact,
    FailureKind, FuzzRunner, TrialRunner,
};
use detector::RacePair;
use interp::SetupError;
use racefuzzer::{FuzzConfig, FuzzOutcome};
use std::path::PathBuf;

/// A racy program whose executions need a few hundred steps: the spin loop
/// makes tiny step budgets fail while realistic ones succeed.
fn slow_racy_program() -> cil::Program {
    cil::compile(
        r#"
        global x = 0;
        global i = 0;
        proc child() { x = 1; }
        proc main() {
            var t = spawn child();
            while (i < 40) { i = i + 1; }
            x = 2;
            join t;
        }
        "#,
    )
    .unwrap()
}

fn figure1_job() -> CampaignJob {
    let workload = workloads::figure1();
    CampaignJob::new("figure1", workload, "main")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaign-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn budget_exhaustion_retries_with_backoff_until_success() {
    let options = CampaignOptions {
        trials_per_pair: 5,
        fuzz: FuzzConfig {
            max_steps: 16, // far below what the spin loop needs
            ..FuzzConfig::default()
        },
        max_attempts: 6,
        backoff_factor: 4,
        max_step_budget: 1_000_000,
        ..CampaignOptions::default()
    };
    let campaign = Campaign::new(
        vec![CampaignJob::new("slow", slow_racy_program(), "main")],
        options,
    );
    let report = campaign.run().unwrap();
    assert!(report.completed());
    let job = &report.jobs[0];
    assert!(!job.potential.is_empty(), "phase 1 should predict the race");
    // Every trial eventually completed: no quarantine, full trial counts.
    assert!(job.quarantined.is_empty());
    for pair_report in &job.reports {
        assert_eq!(pair_report.trials, 5);
    }
    // But the tiny initial budget did fail and was retried.
    assert!(report.failure_count() > 0);
    assert!(job
        .failures
        .iter()
        .all(|failure| failure.kind == FailureKind::StepBudget));
    // Retries grew the budget.
    assert!(job.failures.iter().any(|failure| failure.attempt > 1));
    let budgets: Vec<u64> = job.failures.iter().map(|f| f.step_budget).collect();
    assert!(budgets.iter().any(|&b| b > 16));
}

#[test]
fn persistent_budget_exhaustion_quarantines_the_pair() {
    let options = CampaignOptions {
        trials_per_pair: 5,
        fuzz: FuzzConfig {
            max_steps: 16,
            ..FuzzConfig::default()
        },
        max_attempts: 3,
        backoff_factor: 2,
        max_step_budget: 16, // the budget can never grow: every retry fails
        ..CampaignOptions::default()
    };
    let campaign = Campaign::new(
        vec![CampaignJob::new("slow", slow_racy_program(), "main")],
        options,
    );
    let report = campaign.run().unwrap();
    assert!(report.completed());
    let job = &report.jobs[0];
    assert_eq!(job.quarantined.len(), job.potential.len());
    let quarantine = &job.quarantined[0];
    assert_eq!(quarantine.attempts, 3);
    assert!(quarantine.reason.to_string().contains("step_budget"));
    assert!(job.is_quarantined(quarantine.pair));
    // The pair's report exists but covers no completed trials.
    assert_eq!(job.reports[0].trials, 0);
    // done flag still set: quarantine is a recorded outcome, not a wedge.
    assert!(job.done);
}

/// A runner that panics on one specific seed; everything else is real.
struct PanicOnSeed {
    seed: u64,
    inner: FuzzRunner,
}

impl TrialRunner for PanicOnSeed {
    fn run_trial(
        &self,
        program: &cil::Program,
        entry: &str,
        pair: RacePair,
        config: &FuzzConfig,
    ) -> Result<FuzzOutcome, SetupError> {
        assert!(
            config.seed != self.seed,
            "injected fault: seed {} is cursed",
            self.seed
        );
        self.inner.run_trial(program, entry, pair, config)
    }
}

#[test]
fn panicking_trial_writes_artifact_and_reproduce_replays_it() {
    let artifact_dir = temp_dir("artifacts");
    let options = CampaignOptions {
        trials_per_pair: 6,
        base_seed: 1,
        max_attempts: 2,
        artifact_dir: Some(artifact_dir.clone()),
        ..CampaignOptions::default()
    };
    let campaign = Campaign::new(vec![figure1_job()], options);
    let runner = PanicOnSeed {
        seed: 4,
        inner: FuzzRunner,
    };
    let report = campaign.run_with(&runner).unwrap();
    assert!(report.completed());
    let job = &report.jobs[0];

    // The cursed seed failed both attempts of the first pair → quarantine…
    assert!(!job.quarantined.is_empty());
    assert!(job.quarantined[0].reason.to_string().contains("panic"));
    assert!(job.quarantined[0].reason.to_string().contains("cursed"));
    // …but trials with other seeds completed first.
    assert_eq!(job.reports[0].trials, 3); // seeds 1..=3 before 4 failed
    // Every predicted pair hits the cursed seed: two attempts each.
    assert_eq!(job.quarantined.len(), job.potential.len());
    let panic_failures: Vec<_> = job
        .failures
        .iter()
        .filter(|failure| matches!(failure.kind, FailureKind::Panic(_)))
        .collect();
    assert_eq!(panic_failures.len(), 2 * job.quarantined.len());

    // One artifact exists per failing (pair, seed); load it back.
    let entries: Vec<_> = std::fs::read_dir(&artifact_dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .collect();
    assert!(!entries.is_empty());
    let artifact = FailureArtifact::load(&entries[0]).unwrap();
    assert_eq!(artifact.seed, 4);
    assert_eq!(artifact.attempt, 2); // the last attempt overwrote the first
    assert!(matches!(&artifact.kind, FailureKind::Panic(message)
        if message.contains("cursed")));

    // Reproduce with the same faulty runner: the identical panic replays.
    let replay_runner = PanicOnSeed {
        seed: 4,
        inner: FuzzRunner,
    };
    let reproduction = campaign
        .reproduce_with(&replay_runner, &artifact)
        .unwrap();
    assert!(reproduction.matches(&artifact));
    assert_eq!(reproduction.kind, Some(artifact.kind.clone()));

    // Reproduce against the wrong program: rejected by the digest check.
    let other = Campaign::new(
        vec![CampaignJob::new("figure1", slow_racy_program(), "main")],
        CampaignOptions::default(),
    );
    assert!(matches!(
        other.reproduce(&artifact),
        Err(ArtifactError::DigestMismatch { .. })
    ));

    std::fs::remove_dir_all(&artifact_dir).ok();
}

#[test]
fn interrupted_campaign_resumes_to_identical_reports() {
    let dir = temp_dir("resume");
    let checkpoint = dir.join("checkpoint.json");
    let jobs = || {
        vec![
            figure1_job(),
            CampaignJob::new("figure2", workloads::figure2(3), "main"),
        ]
    };
    let base_options = CampaignOptions {
        trials_per_pair: 8,
        ..CampaignOptions::default()
    };

    // Reference: one uninterrupted run, no checkpointing.
    let reference = Campaign::new(jobs(), base_options.clone()).run().unwrap();
    assert!(reference.completed());
    let total_pairs: usize = reference.jobs.iter().map(|job| job.potential.len()).sum();
    assert!(total_pairs >= 2, "need at least two pairs to interrupt between");

    // Interrupted run: complete one pair per invocation, "killing" the
    // campaign after each — state must survive entirely via the checkpoint.
    let mut resumed_any = false;
    let final_report = loop {
        let options = CampaignOptions {
            checkpoint_path: Some(checkpoint.clone()),
            stop_after_pairs: Some(1),
            ..base_options.clone()
        };
        let report = Campaign::new(jobs(), options).run().unwrap();
        resumed_any |= report.resumed;
        if !report.interrupted {
            break report;
        }
    };
    assert!(resumed_any, "later invocations must resume from disk");
    assert!(final_report.completed());

    // The acceptance bar: identical final PairReports, byte for byte.
    assert_eq!(
        format!("{:?}", final_report.jobs.iter().map(|j| &j.reports).collect::<Vec<_>>()),
        format!("{:?}", reference.jobs.iter().map(|j| &j.reports).collect::<Vec<_>>()),
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// A runner that panics for every trial of one program (matched by digest).
struct PanicOnProgram {
    digest: u64,
    inner: FuzzRunner,
}

impl TrialRunner for PanicOnProgram {
    fn run_trial(
        &self,
        program: &cil::Program,
        entry: &str,
        pair: RacePair,
        config: &FuzzConfig,
    ) -> Result<FuzzOutcome, SetupError> {
        assert!(
            program_digest(program) != self.digest,
            "injected fault: this workload always crashes"
        );
        self.inner.run_trial(program, entry, pair, config)
    }
}

#[test]
fn campaign_over_all_workloads_survives_one_bad_workload() {
    // The acceptance scenario: every Table-1 workload, with one of them
    // (cache4j) panicking on every trial.
    let fleet = workloads::all();
    let bad_name = "cache4j";
    let bad_digest = program_digest(
        &fleet
            .iter()
            .find(|workload| workload.name == bad_name)
            .expect("cache4j is in the fleet")
            .program,
    );
    let jobs: Vec<CampaignJob> = fleet
        .into_iter()
        .map(|workload| CampaignJob::new(workload.name, workload.program, workload.entry))
        .collect();
    let options = CampaignOptions {
        trials_per_pair: 2, // keep the full-fleet test fast
        max_attempts: 2,
        ..CampaignOptions::default()
    };
    let campaign = Campaign::new(jobs, options);
    let runner = PanicOnProgram {
        digest: bad_digest,
        inner: FuzzRunner,
    };
    let report = campaign.run_with(&runner).unwrap();

    // The campaign finished; the bad workload's pairs are all quarantined
    // with the injected reason; every other pair still yielded a full
    // PairReport.
    assert!(report.completed());
    let mut saw_real_race = false;
    for job in &report.jobs {
        assert!(job.error.is_none(), "{}: {:?}", job.name, job.error);
        assert_eq!(job.reports.len(), job.potential.len(), "{}", job.name);
        if job.name == bad_name {
            assert!(!job.potential.is_empty());
            assert_eq!(job.quarantined.len(), job.potential.len());
            assert!(job.quarantined[0].reason.to_string().contains("always crashes"));
        } else {
            assert!(job.quarantined.is_empty(), "{} was quarantined", job.name);
            for pair_report in &job.reports {
                assert_eq!(pair_report.trials, 2, "{}", job.name);
            }
            saw_real_race |= !job.real_races().is_empty();
        }
    }
    assert!(saw_real_race, "healthy workloads still confirm races");
}

fn render_reports(report: &campaign::CampaignReport) -> String {
    format!(
        "{:?}",
        report.jobs.iter().map(|job| &job.reports).collect::<Vec<_>>()
    )
}

#[test]
fn parallel_campaign_matches_sequential_and_survives_interruption() {
    let dir = temp_dir("parallel-resume");
    let checkpoint = dir.join("checkpoint.json");
    let jobs = || {
        vec![
            figure1_job(),
            CampaignJob::new("figure2", workloads::figure2(3), "main"),
        ]
    };
    let base_options = CampaignOptions {
        trials_per_pair: 8,
        ..CampaignOptions::default()
    };

    // Reference: one uninterrupted sequential run.
    let reference = Campaign::new(jobs(), base_options.clone()).run().unwrap();
    assert!(reference.completed());

    // A full parallel run commits the same reports, failures, and
    // quarantines as the sequential one.
    let parallel_options = CampaignOptions {
        parallel: racefuzzer::ParallelOptions::with_workers(4),
        ..base_options.clone()
    };
    let parallel = Campaign::new(jobs(), parallel_options.clone()).run().unwrap();
    assert!(parallel.completed());
    assert_eq!(render_reports(&parallel), render_reports(&reference));
    assert_eq!(parallel.failure_count(), reference.failure_count());
    assert_eq!(parallel.quarantine_count(), reference.quarantine_count());

    // Kill a parallel campaign after every committed pair; each resumed
    // invocation picks up from the checkpoint with 4 workers. Uncommitted
    // worker results are discarded at interruption and redone — the final
    // reports must still match the sequential reference byte for byte.
    let mut resumed_any = false;
    let final_report = loop {
        let options = CampaignOptions {
            checkpoint_path: Some(checkpoint.clone()),
            stop_after_pairs: Some(1),
            ..parallel_options.clone()
        };
        let report = Campaign::new(jobs(), options).run().unwrap();
        resumed_any |= report.resumed;
        if !report.interrupted {
            break report;
        }
    };
    assert!(resumed_any, "later invocations must resume from disk");
    assert!(final_report.completed());
    assert_eq!(render_reports(&final_report), render_reports(&reference));

    std::fs::remove_dir_all(&dir).ok();
}
