//! Crash-safety satellites: corrupt-artifact handling, v2 → v3 checkpoint
//! migration, and the heap-cell budget as a reported verdict.

use campaign::{
    ArtifactError, Campaign, CampaignJob, CampaignOptions, FailureArtifact, FailureKind,
    QuarantineReason,
};
use racefuzzer::FuzzConfig;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crash-safety-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The program the `checkpoint_v2.json` fixture was recorded on (digest
/// `94f8464ec7dd588d`) — byte-for-byte the fixture generator's source.
fn migration_program() -> cil::Program {
    cil::compile(
        r#"
        global x = 0;
        global y = 0;
        proc writer() { x = 1; y = 2; }
        proc main() {
            var t = spawn writer();
            var a = x;
            var b = y;
            join t;
        }
        "#,
    )
    .unwrap()
}

/// A racy spin loop that can never finish inside its step budget, so every
/// trial fails and the campaign persists failure artifacts.
fn budget_buster() -> cil::Program {
    cil::compile(
        r#"
        global g = 0;
        proc adder() {
            var i = 0;
            while (i < 40) { g = g + 1; i = i + 1; }
        }
        proc main() {
            var t = spawn adder();
            var j = 0;
            while (j < 40) { g = g + 1; j = j + 1; }
            join t;
        }
        "#,
    )
    .unwrap()
}

fn artifact_paths(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn flipped_artifact_byte_is_refused_not_replayed() {
    let dir = temp_dir("flip");
    let options = CampaignOptions {
        trials_per_pair: 2,
        fuzz: FuzzConfig {
            max_steps: 220,
            ..FuzzConfig::default()
        },
        max_attempts: 2,
        max_step_budget: 220, // budget can never grow: every trial fails
        artifact_dir: Some(dir.clone()),
        ..CampaignOptions::default()
    };
    let campaign = Campaign::new(
        vec![CampaignJob::new("buster", budget_buster(), "main")],
        options,
    );
    let report = campaign.run().unwrap();
    assert!(report.quarantine_count() > 0, "buster pairs quarantine");
    let paths = artifact_paths(&dir);
    assert!(paths.len() >= 2, "expected several artifacts, got {paths:?}");

    // Flip one byte in the middle of the first artifact.
    let victim = &paths[0];
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(victim, &bytes).unwrap();

    // Loading it directly reports corruption instead of trusting it.
    let error = FailureArtifact::load(victim).unwrap_err();
    assert!(
        matches!(error, ArtifactError::Malformed(_)),
        "CRC catches the flip: {error}"
    );

    // The campaign-level sweep skips it with a structured reason and
    // still replays the intact artifacts.
    let sweep = campaign.reproduce_dir(&dir).unwrap();
    assert_eq!(sweep.skipped.len(), 1);
    let (skipped_path, reason) = &sweep.skipped[0];
    assert_eq!(skipped_path, victim);
    assert!(
        matches!(reason, QuarantineReason::CorruptArtifact(_)),
        "structured reason, got {reason:?}"
    );
    assert_eq!(sweep.reproduced.len(), paths.len() - 1);
    for (_, reproduction) in &sweep.reproduced {
        assert_eq!(reproduction.kind, Some(FailureKind::StepBudget));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn artifact_from_a_different_program_is_a_digest_mismatch() {
    let dir = temp_dir("digest");
    let options = CampaignOptions {
        trials_per_pair: 1,
        fuzz: FuzzConfig {
            max_steps: 220,
            ..FuzzConfig::default()
        },
        max_attempts: 2,
        max_step_budget: 220,
        artifact_dir: Some(dir.clone()),
        ..CampaignOptions::default()
    };
    let recorded = Campaign::new(
        vec![CampaignJob::new("job", budget_buster(), "main")],
        options.clone(),
    );
    recorded.run().unwrap();
    let paths = artifact_paths(&dir);
    assert!(!paths.is_empty());
    let artifact = FailureArtifact::load(&paths[0]).unwrap();

    // Same job name, different program: replay must refuse, not run.
    let imposter = Campaign::new(
        vec![CampaignJob::new("job", migration_program(), "main")],
        options,
    );
    let error = imposter.reproduce(&artifact).unwrap_err();
    assert!(
        matches!(error, ArtifactError::DigestMismatch { .. }),
        "got {error}"
    );
    // And the directory sweep records it as a skip, not a crash.
    let sweep = imposter.reproduce_dir(&dir).unwrap();
    assert!(sweep.reproduced.is_empty());
    assert_eq!(sweep.skipped.len(), paths.len());
    for (_, reason) in &sweep.skipped {
        let QuarantineReason::CorruptArtifact(detail) = reason else {
            panic!("expected CorruptArtifact, got {reason:?}");
        };
        assert!(
            detail.contains("recorded on program"),
            "reason names the mismatched digests: {detail}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v2_checkpoint_resumes_under_format_version_3() {
    let dir = temp_dir("migrate");
    let checkpoint = dir.join("checkpoint.json");
    std::fs::copy(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/checkpoint_v2.json"),
        &checkpoint,
    )
    .unwrap();

    // Options must match what the fixture was recorded with.
    let options = CampaignOptions {
        trials_per_pair: 4,
        base_seed: 1,
        checkpoint_path: Some(checkpoint.clone()),
        ..CampaignOptions::default()
    };
    let job = || vec![CampaignJob::new("migrate", migration_program(), "main")];
    let resumed = Campaign::new(job(), options.clone()).run().unwrap();
    assert!(resumed.resumed, "the v2 checkpoint must be adopted");
    assert!(resumed.completed());

    // Same final report as a run that never saw the old checkpoint.
    let fresh_options = CampaignOptions {
        checkpoint_path: None,
        ..options
    };
    let fresh = Campaign::new(job(), fresh_options).run().unwrap();
    assert_eq!(
        resumed.canonical_json(),
        fresh.canonical_json(),
        "migrated resume must reproduce the uninterrupted report"
    );

    // The checkpoint was rewritten in the current sealed format.
    let text = std::fs::read_to_string(&checkpoint).unwrap();
    assert!(text.contains("\"format_version\": 3"));
    assert!(text.contains("#crc32="), "v3 checkpoints carry a CRC footer");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn heap_budget_is_a_reported_verdict_not_a_quarantine() {
    let program = cil::compile(
        r#"
        class Node { }
        global flag = 0;
        global sink;
        proc hog() {
            var i = 0;
            while (i < 60) { sink = new Node; i = i + 1; }
            flag = 1;
        }
        proc main() {
            var t = spawn hog();
            var v = flag;
            join t;
        }
        "#,
    )
    .unwrap();
    let options = CampaignOptions {
        trials_per_pair: 3,
        fuzz: FuzzConfig {
            max_heap_cells: Some(16),
            ..FuzzConfig::default()
        },
        ..CampaignOptions::default()
    };
    let report = Campaign::new(vec![CampaignJob::new("hog", program, "main")], options)
        .run()
        .unwrap();
    assert!(report.completed());
    let job = &report.jobs[0];
    assert!(!job.potential.is_empty(), "phase 1 predicts the flag race");
    // The budget verdict is counted per pair, never retried or quarantined.
    assert!(job.quarantined.is_empty(), "got {:?}", job.quarantined);
    assert_eq!(report.failure_count(), 0);
    assert!(
        job.reports.iter().any(|r| r.memory_trials > 0),
        "some trials must end on the heap budget: {:?}",
        job.reports
    );
    for pair_report in &job.reports {
        assert_eq!(pair_report.trials, 3, "every trial still counted");
    }
}
