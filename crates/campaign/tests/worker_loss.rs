//! Regression test: a worker thread dying mid-pair must not hang the
//! parallel campaign. The commit thread's liveness probe notices the dead
//! claimer, marks that pair as lost, and keeps committing the rest.
//!
//! This lives in its own integration-test binary because the fault
//! schedule is process-global: installing `campaign.worker@1=err` here
//! must not leak into unrelated campaign tests running in parallel
//! threads.

use campaign::{Campaign, CampaignJob, CampaignOptions, FailureKind, QuarantineReason};
use racefuzzer::ParallelOptions;
use std::time::Duration;

#[test]
fn dead_worker_is_detected_and_the_campaign_finishes() {
    let program = cil::compile(
        r#"
        global a = 0;
        global b = 0;
        global c = 0;
        proc w1() { a = 1; }
        proc w2() { b = 1; }
        proc w3() { c = 1; }
        proc main() {
            var t1 = spawn w1();
            var t2 = spawn w2();
            var t3 = spawn w3();
            var x = a;
            var y = b;
            var z = c;
            join t1;
            join t2;
            join t3;
        }
        "#,
    )
    .unwrap();
    let options = CampaignOptions {
        trials_per_pair: 3,
        parallel: ParallelOptions {
            workers: 4,
            ..ParallelOptions::default()
        },
        // Short liveness-probe interval so the test detects the dead
        // worker quickly; before the fix this campaign blocked forever on
        // the lost pair's result.
        worker_stall: Duration::from_millis(150),
        ..CampaignOptions::default()
    };

    // The first worker to claim a pair dies before delivering it.
    faults::install(
        faults::Schedule::parse("campaign.worker@1=err").unwrap(),
    );
    let report = Campaign::new(vec![CampaignJob::new("fanout", program, "main")], options)
        .run()
        .unwrap();
    faults::clear();

    assert!(report.completed(), "campaign must terminate, not hang");
    let job = &report.jobs[0];
    assert!(
        job.potential.len() >= 3,
        "need several pairs so work continues past the lost one: {:?}",
        job.potential
    );

    // Exactly one pair was lost with the dying worker...
    assert_eq!(job.quarantined.len(), 1, "got {:?}", job.quarantined);
    let lost = &job.quarantined[0];
    assert!(
        matches!(&lost.reason, QuarantineReason::TrialFailures(detail) if detail.contains("worker")),
        "reason names the dead worker: {:?}",
        lost.reason
    );
    let worker_losses: Vec<_> = job
        .failures
        .iter()
        .filter(|f| matches!(f.kind, FailureKind::WorkerLoss(_)))
        .collect();
    assert_eq!(worker_losses.len(), 1, "got {:?}", job.failures);
    assert_eq!(worker_losses[0].pair, lost.pair);

    // ...recorded as an empty placeholder report, while every other pair
    // was still fuzzed and committed in full.
    assert_eq!(job.reports.len(), job.potential.len());
    for pair_report in &job.reports {
        if pair_report.target == lost.pair {
            assert_eq!(pair_report.trials, 0, "lost pair ran no trials");
        } else {
            assert_eq!(pair_report.trials, 3);
        }
    }
}
