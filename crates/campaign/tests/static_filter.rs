//! Integration tests for the campaign's static pre-analysis modes: pruned
//! pairs are quarantined with a structured reason (and survive
//! checkpoint/resume), audit mode cross-checks confirmed races, and the
//! filter never changes which races a campaign confirms.

use campaign::{
    Campaign, CampaignJob, CampaignOptions, QuarantineReason, StaticFilterMode,
};
use detector::{Policy, PredictConfig};
use racefuzzer::FuzzConfig;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// A program with one real race (`@racy` vs the unsynchronized main-thread
/// write) and fork/join-ordered accesses that the Eraser-style lockset
/// policy flags anyway — static MHP refutes those false alarms.
fn mixed_program() -> cil::Program {
    cil::compile(
        r#"
        global x = 0;
        global y = 0;
        proc child() {
            x = x + 1;
            y = y + 1;
        }
        proc main() {
            y = 1;
            var t = spawn child();
            x = 2;
            join t;
            y = 3;
        }
        "#,
    )
    .unwrap()
}

fn lockset_options() -> CampaignOptions {
    CampaignOptions {
        trials_per_pair: 10,
        predict: PredictConfig {
            policy: Policy::Lockset,
            ..PredictConfig::default()
        },
        fuzz: FuzzConfig {
            postpone_limit: 200,
            max_steps: 200_000,
            ..FuzzConfig::default()
        },
        ..CampaignOptions::default()
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("campaign-static-filter-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn prune_mode_quarantines_refuted_pairs_without_losing_races() {
    let program = mixed_program();
    let job = || vec![CampaignJob::new("mixed", program.clone(), "main")];

    let baseline = Campaign::new(job(), lockset_options()).run().unwrap();
    let pruned = Campaign::new(
        job(),
        CampaignOptions {
            static_filter: StaticFilterMode::Prune,
            ..lockset_options()
        },
    )
    .run()
    .unwrap();
    assert!(baseline.completed() && pruned.completed());

    // The lockset policy predicts fork/join-ordered `y` pairs that cannot
    // actually run in parallel; the filter removes at least one of them.
    let stats = pruned.jobs[0].statically_pruned();
    assert!(
        !stats.is_empty(),
        "expected static pruning on lockset-predicted pairs, got none \
         (potential: {:?})",
        pruned.jobs[0].potential
    );
    for entry in &pruned.jobs[0].quarantined {
        assert!(matches!(
            entry.reason,
            QuarantineReason::StaticallyPruned(_)
        ));
        assert_eq!(entry.attempts, 0);
    }

    // Zero confirmed-race regressions: every race the unfiltered campaign
    // confirms is still confirmed with pruning on.
    let baseline_real: BTreeSet<_> = baseline.jobs[0].real_races().into_iter().collect();
    let pruned_real: BTreeSet<_> = pruned.jobs[0].real_races().into_iter().collect();
    assert_eq!(baseline_real, pruned_real);
    assert!(!pruned_real.is_empty(), "the mixed program has a real race");

    // Reports stay parallel to `potential` (pruned pairs keep empty slots).
    assert_eq!(
        pruned.jobs[0].reports.len(),
        pruned.jobs[0].potential.len()
    );
}

#[test]
fn audit_mode_fuzzes_everything_and_reports_no_soundness_bugs() {
    let report = Campaign::new(
        vec![CampaignJob::new("mixed", mixed_program(), "main")],
        CampaignOptions {
            static_filter: StaticFilterMode::Audit,
            ..lockset_options()
        },
    )
    .run()
    .unwrap();
    assert!(report.completed());
    // Audit mode runs trials for every pair…
    assert!(report.jobs[0]
        .reports
        .iter()
        .all(|pair_report| pair_report.trials > 0));
    assert!(report.jobs[0].quarantined.is_empty());
    // …and a sound filter never refutes a confirmed race.
    assert_eq!(report.jobs[0].soundness_bugs, Vec::<String>::new());
}

#[test]
fn pruned_quarantines_survive_checkpoint_resume() {
    let path = temp_path("prune-resume.json");
    std::fs::remove_file(&path).ok();
    let options = |stop| CampaignOptions {
        static_filter: StaticFilterMode::Prune,
        checkpoint_path: Some(path.clone()),
        stop_after_pairs: stop,
        ..lockset_options()
    };
    let job = || vec![CampaignJob::new("mixed", mixed_program(), "main")];

    let first = Campaign::new(job(), options(Some(1))).run().unwrap();
    assert!(first.interrupted);
    let resumed = Campaign::new(job(), options(None)).run().unwrap();
    assert!(resumed.completed() && resumed.resumed);

    let uninterrupted = Campaign::new(job(), {
        let mut fresh = options(None);
        fresh.checkpoint_path = None;
        fresh
    })
    .run()
    .unwrap();
    assert_eq!(
        format!("{:?}", resumed.jobs[0].quarantined),
        format!("{:?}", uninterrupted.jobs[0].quarantined)
    );
    assert_eq!(
        format!("{:?}", resumed.jobs[0].reports),
        format!("{:?}", uninterrupted.jobs[0].reports)
    );
    std::fs::remove_file(&path).ok();
}
