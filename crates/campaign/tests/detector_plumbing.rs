//! Campaign-level detector plumbing: the Phase-1 engine choice flows from
//! [`CampaignOptions::predict`] into prediction and is recorded on the
//! report — and swapping engines never changes what the campaign does.

use campaign::{Campaign, CampaignJob, CampaignOptions};
use detector::{DetectorImpl, PredictConfig};

fn jobs() -> Vec<CampaignJob> {
    vec![
        CampaignJob::new("figure1", workloads::figure1(), "main"),
        CampaignJob::new("figure2", workloads::figure2(4), "main"),
    ]
}

fn run(detector: DetectorImpl) -> campaign::CampaignReport {
    let options = CampaignOptions {
        trials_per_pair: 4,
        predict: PredictConfig {
            detector,
            ..PredictConfig::default()
        },
        ..CampaignOptions::default()
    };
    Campaign::new(jobs(), options).run().unwrap()
}

#[test]
fn report_records_the_detector_impl() {
    assert_eq!(run(DetectorImpl::Epoch).detector, DetectorImpl::Epoch);
    assert_eq!(run(DetectorImpl::Naive).detector, DetectorImpl::Naive);
    assert_eq!(DetectorImpl::default(), DetectorImpl::Epoch);
}

#[test]
fn campaigns_are_identical_under_either_detector() {
    let epoch = run(DetectorImpl::Epoch);
    let naive = run(DetectorImpl::Naive);
    assert_eq!(epoch.jobs.len(), naive.jobs.len());
    for (e, n) in epoch.jobs.iter().zip(&naive.jobs) {
        assert_eq!(e.potential, n.potential, "{}: predicted pairs differ", e.name);
        assert_eq!(e.reports.len(), n.reports.len(), "{}", e.name);
        for (er, nr) in e.reports.iter().zip(&n.reports) {
            assert_eq!(er.target, nr.target, "{}", e.name);
            assert_eq!(er.trials, nr.trials, "{}", e.name);
            assert_eq!(er.hits, nr.hits, "{}", e.name);
            assert_eq!(er.real_pairs, nr.real_pairs, "{}", e.name);
        }
    }
}
