//! Property-based tests for the vector-clock laws that the happens-before
//! relation in the race detector depends on.

use proptest::prelude::*;
use vclock::VectorClock;

fn arb_clock() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u64..16, 0..8).prop_map(VectorClock::from_components)
}

proptest! {
    /// `le` is a partial order: reflexive.
    #[test]
    fn le_reflexive(a in arb_clock()) {
        prop_assert!(a.le(&a));
    }

    /// `le` is antisymmetric.
    #[test]
    fn le_antisymmetric(a in arb_clock(), b in arb_clock()) {
        if a.le(&b) && b.le(&a) {
            prop_assert_eq!(a, b);
        }
    }

    /// `le` is transitive.
    #[test]
    fn le_transitive(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c));
        }
    }

    /// Join is the least upper bound: an upper bound of both inputs…
    #[test]
    fn join_is_upper_bound(a in arb_clock(), b in arb_clock()) {
        let j = a.joined(&b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
    }

    /// …and least among upper bounds.
    #[test]
    fn join_is_least_upper_bound(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        if a.le(&c) && b.le(&c) {
            prop_assert!(a.joined(&b).le(&c));
        }
    }

    /// Join is commutative, associative, and idempotent.
    #[test]
    fn join_lattice_laws(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        prop_assert_eq!(a.joined(&b), b.joined(&a));
        prop_assert_eq!(a.joined(&b).joined(&c), a.joined(&b.joined(&c)));
        prop_assert_eq!(a.joined(&a), a.clone());
    }

    /// Ticking makes a clock strictly later than it was.
    #[test]
    fn tick_strictly_advances(a in arb_clock(), thread in 0usize..8) {
        let before = a.clone();
        let mut after = a;
        after.tick(thread);
        prop_assert!(before.lt(&after));
    }

    /// Concurrency is symmetric and irreflexive.
    #[test]
    fn concurrent_symmetric(a in arb_clock(), b in arb_clock()) {
        prop_assert_eq!(a.concurrent(&b), b.concurrent(&a));
        prop_assert!(!a.concurrent(&a));
    }

    /// Exactly one of: a < b, b < a, a == b, or concurrent.
    #[test]
    fn trichotomy_plus_concurrency(a in arb_clock(), b in arb_clock()) {
        let cases = [a.lt(&b), b.lt(&a), a == b, a.concurrent(&b)];
        prop_assert_eq!(cases.iter().filter(|&&case| case).count(), 1);
    }

    /// `get`/`set` round-trip.
    #[test]
    fn get_set_roundtrip(a in arb_clock(), thread in 0usize..8, value in 0u64..100) {
        let mut clock = a;
        clock.set(thread, value);
        prop_assert_eq!(clock.get(thread), value);
    }
}
