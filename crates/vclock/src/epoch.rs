//! Epochs: constant-size happens-before certificates.
//!
//! An [`Epoch`] `(t, c)` records that thread `t`'s own clock component was
//! `c` at some event `e` performed by `t`. The FastTrack observation
//! (Flanagan & Freund, PLDI 2009 — applied here to the hybrid detector's
//! clocks) is that for such an epoch, the full happens-before test against
//! any later clock collapses to one comparison:
//!
//! > Let `V_e` be thread `t`'s entire vector clock at event `e`, with
//! > `V_e[t] = c`. For every clock `C` reachable in the same execution by
//! > ticks and joins, `V_e ⊑ C` **iff** `c ≤ C[t]`.
//!
//! *Why*: the only producer of `t`'s component is `t` itself, so `C[t] ≥ c`
//! can only arise from a join chain originating at `t` at local time `≥ c`
//! — and every join along that chain carried all of `V_e`'s other
//! components too (joins are pointwise maxima, and `t`'s clock at local
//! time `≥ c` dominates `V_e`). The converse direction is immediate from
//! `V_e[t] = c`.
//!
//! The precondition matters: the summary is only valid for a clock *owned*
//! by the epoch's thread at the event (exactly what a race detector stores
//! per access). An arbitrary `(thread, time)` slice of someone else's clock
//! carries no such guarantee.
//!
//! # Examples
//!
//! ```
//! use vclock::{Epoch, VectorClock};
//!
//! let mut writer = VectorClock::new();
//! writer.tick(0);
//! let at_write = writer.epoch(0); // (t0, 1), taken from t0's own clock
//!
//! // Unsynchronized reader: concurrent.
//! let mut reader = VectorClock::new();
//! reader.tick(1);
//! assert!(!at_write.le(&reader));
//!
//! // After a synchronization edge from the writer: ordered.
//! reader.join(&writer);
//! reader.tick(1);
//! assert!(at_write.le(&reader));
//! ```

use crate::VectorClock;
use std::fmt;

/// A `(thread, time)` pair summarising one thread's own clock at one event.
///
/// Constant-size (16 bytes, `Copy`) where a [`VectorClock`] is
/// per-thread-sized and heap-backed beyond eight threads — this is what an
/// epoch-optimized detector stores per remembered access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Epoch {
    thread: u32,
    time: u64,
}

impl Epoch {
    /// Creates the epoch `(thread, time)`.
    pub fn new(thread: usize, time: u64) -> Self {
        Epoch {
            thread: thread as u32,
            time,
        }
    }

    /// The owning thread's index.
    #[inline]
    pub fn thread(&self) -> usize {
        self.thread as usize
    }

    /// The owning thread's clock component at the event.
    #[inline]
    pub fn time(&self) -> u64 {
        self.time
    }

    /// O(1) happens-before: `true` iff the epoch's full clock `⊑ other`.
    ///
    /// Sound only under the module-level precondition: the epoch was taken
    /// from the owning thread's **own** clock ([`VectorClock::epoch`] at an
    /// event performed by that thread), and `other` belongs to the same
    /// execution (built by ticks and joins only).
    #[inline]
    pub fn le(&self, other: &VectorClock) -> bool {
        self.time <= other.get(self.thread as usize)
    }
}

impl fmt::Debug for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Epoch(t{}@{})", self.thread, self.time)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@t{}", self.time, self.thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let epoch = Epoch::new(3, 41);
        assert_eq!(epoch.thread(), 3);
        assert_eq!(epoch.time(), 41);
    }

    #[test]
    fn zero_epoch_precedes_everything() {
        let epoch = Epoch::new(0, 0);
        assert!(epoch.le(&VectorClock::new()));
    }

    #[test]
    fn le_matches_full_clock_le_along_message_chains() {
        // t0 ticks twice; epoch of the *first* event must agree with the
        // full-clock comparison against every later clock in the system.
        let mut t0 = VectorClock::new();
        t0.tick(0);
        let first_clock = t0.clone();
        let first_epoch = t0.epoch(0);
        t0.tick(0);

        let mut t1 = VectorClock::new();
        t1.tick(1);
        assert_eq!(first_epoch.le(&t1), first_clock.le(&t1));
        assert!(!first_epoch.le(&t1));

        // t1 hears from t0 (post-second-tick): both agree it is ordered.
        t1.join(&t0);
        t1.tick(1);
        assert_eq!(first_epoch.le(&t1), first_clock.le(&t1));
        assert!(first_epoch.le(&t1));

        // A third thread hears only from t1: transitivity preserved.
        let mut t2 = VectorClock::new();
        t2.join(&t1);
        t2.tick(2);
        assert_eq!(first_epoch.le(&t2), first_clock.le(&t2));
        assert!(first_epoch.le(&t2));
    }

    #[test]
    fn ordering_is_derived_lexicographically() {
        assert!(Epoch::new(0, 5) < Epoch::new(1, 1));
        assert!(Epoch::new(2, 1) < Epoch::new(2, 9));
    }

    #[test]
    fn display_and_debug() {
        let epoch = Epoch::new(1, 7);
        assert_eq!(format!("{epoch}"), "7@t1");
        assert_eq!(format!("{epoch:?}"), "Epoch(t1@7)");
    }
}
