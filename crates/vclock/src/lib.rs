//! Vector clocks, epochs, and the happens-before partial order.
//!
//! A [`VectorClock`] summarises, per thread, how many logical steps of that
//! thread are "known" at a point in an execution. The hybrid race detector of
//! the RaceFuzzer paper (Phase 1) keeps one clock per thread, advances it on
//! local events, and joins clocks along `SND`/`RCV` synchronization edges
//! (thread start, join, and notify→wait). Two events are *concurrent* — a
//! precondition of the paper's race predicate — exactly when neither of their
//! clocks [`VectorClock::le`]s the other.
//!
//! Two representation choices keep the hot paths allocation-free:
//!
//! * Clocks with at most [`VectorClock::INLINE_THREADS`] components are
//!   stored inline — no heap allocation for `new`, `tick`, `join`, or
//!   `clone` on the small thread counts that dominate real workloads.
//! * An [`Epoch`] is the constant-size `(thread, time)` summary of a
//!   thread's own clock at one event; [`Epoch::le`] decides
//!   happens-before against a full clock with a single component
//!   comparison (the FastTrack insight — see the `epoch` module docs).
//!
//! # Examples
//!
//! ```
//! use vclock::VectorClock;
//!
//! let mut a = VectorClock::new();
//! let mut b = VectorClock::new();
//! a.tick(0); // thread 0 performs an event
//! b.tick(1); // thread 1 performs an event
//! assert!(a.concurrent(&b));
//!
//! // A synchronization edge from thread 0 to thread 1 orders them:
//! b.join(&a);
//! b.tick(1);
//! assert!(a.le(&b));
//! assert!(!b.le(&a));
//! ```

mod epoch;

pub use epoch::Epoch;

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Storage for the clock components: inline for small thread counts,
/// spilled to the heap beyond [`VectorClock::INLINE_THREADS`].
///
/// Invariant (shared with `VectorClock::normalize`): the last stored
/// component is non-zero, so logically-equal clocks have equal slices no
/// matter which representation holds them.
#[derive(Clone)]
enum Entries {
    Inline {
        len: u8,
        buf: [u64; VectorClock::INLINE_THREADS],
    },
    Heap(Vec<u64>),
}

impl Default for Entries {
    fn default() -> Self {
        Entries::Inline {
            len: 0,
            buf: [0; VectorClock::INLINE_THREADS],
        }
    }
}

/// A vector clock: a map from thread index to logical timestamp.
///
/// The clock is stored densely; missing entries are implicitly zero, so
/// clocks over different numbers of threads compare correctly.
///
/// # Examples
///
/// ```
/// use vclock::VectorClock;
///
/// let mut c = VectorClock::new();
/// c.tick(3);
/// assert_eq!(c.get(3), 1);
/// assert_eq!(c.get(7), 0); // implicit zero
/// ```
#[derive(Clone, Default)]
pub struct VectorClock {
    entries: Entries,
}

impl VectorClock {
    /// Clocks over at most this many threads never touch the heap.
    pub const INLINE_THREADS: usize = 8;

    /// Creates an empty clock (all components zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock with the given per-thread components.
    ///
    /// Trailing zeros are normalised away so that equal clocks compare equal
    /// regardless of how many explicit zero entries they were built with.
    ///
    /// # Examples
    ///
    /// ```
    /// use vclock::VectorClock;
    /// let a = VectorClock::from_components([1, 0, 2]);
    /// let b = VectorClock::from_components([1, 0, 2, 0, 0]);
    /// assert_eq!(a, b);
    /// ```
    pub fn from_components<I: IntoIterator<Item = u64>>(components: I) -> Self {
        let mut clock = Self::new();
        for (thread, value) in components.into_iter().enumerate() {
            if value != 0 {
                clock.grow_to(thread + 1);
                clock.components_mut()[thread] = value;
            }
        }
        clock
    }

    /// The stored components (normalized: no trailing zeros).
    fn components(&self) -> &[u64] {
        match &self.entries {
            Entries::Inline { len, buf } => &buf[..*len as usize],
            Entries::Heap(values) => values,
        }
    }

    fn components_mut(&mut self) -> &mut [u64] {
        match &mut self.entries {
            Entries::Inline { len, buf } => &mut buf[..*len as usize],
            Entries::Heap(values) => values,
        }
    }

    fn len(&self) -> usize {
        match &self.entries {
            Entries::Inline { len, .. } => *len as usize,
            Entries::Heap(values) => values.len(),
        }
    }

    /// Extends the stored components with zeros up to `len`, spilling to
    /// the heap only when `len` exceeds the inline capacity.
    fn grow_to(&mut self, len: usize) {
        match &mut self.entries {
            Entries::Inline { len: cur, buf } => {
                if len <= Self::INLINE_THREADS {
                    if len > *cur as usize {
                        *cur = len as u8;
                    }
                } else {
                    let mut values = buf[..*cur as usize].to_vec();
                    values.resize(len, 0);
                    self.entries = Entries::Heap(values);
                }
            }
            Entries::Heap(values) => {
                if len > values.len() {
                    values.resize(len, 0);
                }
            }
        }
    }

    /// Returns the component for `thread` (zero if never ticked).
    #[inline]
    pub fn get(&self, thread: usize) -> u64 {
        self.components().get(thread).copied().unwrap_or(0)
    }

    /// Sets the component for `thread`.
    pub fn set(&mut self, thread: usize, value: u64) {
        if thread >= self.len() {
            if value == 0 {
                return;
            }
            self.grow_to(thread + 1);
        }
        self.components_mut()[thread] = value;
        self.normalize();
    }

    /// Advances `thread`'s component by one and returns the new value.
    #[inline]
    pub fn tick(&mut self, thread: usize) -> u64 {
        if thread >= self.len() {
            self.grow_to(thread + 1);
        }
        let slot = &mut self.components_mut()[thread];
        *slot += 1;
        *slot
    }

    /// The constant-size `(thread, time)` summary of this clock's own
    /// component — see [`Epoch`] for when the summary can stand in for the
    /// whole clock.
    #[inline]
    pub fn epoch(&self, thread: usize) -> Epoch {
        Epoch::new(thread, self.get(thread))
    }

    /// Pointwise maximum with `other` (the classic vector-clock join).
    ///
    /// Used on every `RCV` event: the receiving thread learns everything the
    /// sender knew. Allocation-free unless the join forces this clock past
    /// [`VectorClock::INLINE_THREADS`] components for the first time.
    pub fn join(&mut self, other: &VectorClock) {
        if other.len() > self.len() {
            self.grow_to(other.len());
        }
        for (mine, theirs) in self.components_mut().iter_mut().zip(other.components()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Returns the pointwise maximum of two clocks without mutating either.
    pub fn joined(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.join(other);
        out
    }

    /// Returns `true` if `self ≤ other` pointwise, i.e. the event stamped
    /// `self` happens-before (or equals) the event stamped `other`.
    ///
    /// Allocation-free; normalization (no trailing zeros) gives an O(1)
    /// negative fast path whenever `self` knows a thread `other` does not.
    #[inline]
    pub fn le(&self, other: &VectorClock) -> bool {
        let mine = self.components();
        let theirs = other.components();
        if mine.len() > theirs.len() {
            // Normalized: our last component is non-zero but other's is 0.
            return false;
        }
        mine.iter().zip(theirs).all(|(a, b)| a <= b)
    }

    /// Returns `true` if `self < other`: `self ≤ other` and they differ.
    pub fn lt(&self, other: &VectorClock) -> bool {
        self.le(other) && self != other
    }

    /// Returns `true` if neither clock happens-before the other.
    ///
    /// This is the concurrency test in the paper's hybrid race predicate:
    /// `¬(e_i ⪯ e_j) ∧ ¬(e_j ⪯ e_i)`.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Number of threads with a non-zero component.
    pub fn active_threads(&self) -> usize {
        self.components().iter().filter(|&&value| value > 0).count()
    }

    /// Returns `true` if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(thread, timestamp)` pairs with non-zero timestamps.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.components()
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, value)| value > 0)
    }

    fn normalize(&mut self) {
        match &mut self.entries {
            Entries::Inline { len, buf } => {
                while *len > 0 && buf[*len as usize - 1] == 0 {
                    *len -= 1;
                }
            }
            Entries::Heap(values) => {
                while values.last() == Some(&0) {
                    values.pop();
                }
            }
        }
    }
}

impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        // Representation-independent: both are normalized, so logical
        // equality is slice equality whether inline or heap-backed.
        self.components() == other.components()
    }
}

impl Eq for VectorClock {}

impl Hash for VectorClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.components().hash(state);
    }
}

impl PartialOrd for VectorClock {
    /// The happens-before partial order. Returns `None` for concurrent clocks.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self.le(other), other.le(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VectorClock{:?}", self.components())
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (thread, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "t{thread}:{value}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<u64> for VectorClock {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self::from_components(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(components: &[u64]) -> VectorClock {
        VectorClock::from_components(components.iter().copied())
    }

    #[test]
    fn new_clock_is_zero() {
        let clock = VectorClock::new();
        assert!(clock.is_zero());
        assert_eq!(clock.get(0), 0);
        assert_eq!(clock.get(100), 0);
        assert_eq!(clock.active_threads(), 0);
    }

    #[test]
    fn tick_advances_single_component() {
        let mut clock = VectorClock::new();
        assert_eq!(clock.tick(2), 1);
        assert_eq!(clock.tick(2), 2);
        assert_eq!(clock.get(2), 2);
        assert_eq!(clock.get(0), 0);
        assert_eq!(clock.active_threads(), 1);
    }

    #[test]
    fn trailing_zeros_do_not_affect_equality() {
        assert_eq!(vc(&[1, 2]), vc(&[1, 2, 0, 0]));
        let mut clock = vc(&[1, 2, 3]);
        clock.set(2, 0);
        assert_eq!(clock, vc(&[1, 2]));
    }

    #[test]
    fn set_ignores_zero_beyond_len() {
        let mut clock = VectorClock::new();
        clock.set(5, 0);
        assert!(clock.is_zero());
        clock.set(5, 7);
        assert_eq!(clock.get(5), 7);
    }

    #[test]
    fn le_on_comparable_clocks() {
        assert!(vc(&[1, 2]).le(&vc(&[1, 3])));
        assert!(!vc(&[1, 3]).le(&vc(&[1, 2])));
        assert!(vc(&[]).le(&vc(&[1])));
        assert!(vc(&[1, 2]).le(&vc(&[1, 2])));
    }

    #[test]
    fn lt_is_strict() {
        assert!(vc(&[1, 2]).lt(&vc(&[1, 3])));
        assert!(!vc(&[1, 2]).lt(&vc(&[1, 2])));
    }

    #[test]
    fn concurrent_clocks_are_incomparable() {
        let a = vc(&[2, 0]);
        let b = vc(&[0, 2]);
        assert!(a.concurrent(&b));
        assert!(b.concurrent(&a));
        assert_eq!(a.partial_cmp(&b), None);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = vc(&[1, 5, 0]);
        a.join(&vc(&[3, 2, 0, 4]));
        assert_eq!(a, vc(&[3, 5, 0, 4]));
    }

    #[test]
    fn joined_does_not_mutate() {
        let a = vc(&[1, 0]);
        let b = vc(&[0, 1]);
        let j = a.joined(&b);
        assert_eq!(j, vc(&[1, 1]));
        assert_eq!(a, vc(&[1, 0]));
    }

    #[test]
    fn partial_ord_matches_le() {
        assert_eq!(vc(&[1]).partial_cmp(&vc(&[2])), Some(Ordering::Less));
        assert_eq!(vc(&[2]).partial_cmp(&vc(&[1])), Some(Ordering::Greater));
        assert_eq!(vc(&[2]).partial_cmp(&vc(&[2])), Some(Ordering::Equal));
    }

    #[test]
    fn message_edge_orders_events() {
        // Model: t0 ticks, sends; t1 receives (joins), ticks.
        let mut sender = VectorClock::new();
        sender.tick(0);
        let message = sender.clone();
        let mut receiver = VectorClock::new();
        receiver.join(&message);
        receiver.tick(1);
        assert!(sender.lt(&receiver));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", VectorClock::new()), "⟨⟩");
        assert_eq!(format!("{}", vc(&[1, 0, 3])), "⟨t0:1, t2:3⟩");
        assert!(!format!("{:?}", VectorClock::new()).is_empty());
    }

    #[test]
    fn iter_skips_zero_components() {
        let clock = vc(&[0, 4, 0, 9]);
        let pairs: Vec<_> = clock.iter().collect();
        assert_eq!(pairs, vec![(1, 4), (3, 9)]);
    }

    #[test]
    fn from_iterator_collects() {
        let clock: VectorClock = [1u64, 2, 3].into_iter().collect();
        assert_eq!(clock, vc(&[1, 2, 3]));
    }

    // -- inline/heap representation boundary --

    #[test]
    fn small_clocks_stay_inline() {
        let mut clock = VectorClock::new();
        for thread in 0..VectorClock::INLINE_THREADS {
            clock.tick(thread);
        }
        assert!(matches!(clock.entries, Entries::Inline { .. }));
        clock.tick(VectorClock::INLINE_THREADS);
        assert!(matches!(clock.entries, Entries::Heap(_)));
        assert_eq!(clock.get(VectorClock::INLINE_THREADS), 1);
        assert_eq!(clock.get(0), 1);
    }

    #[test]
    fn inline_and_heap_clocks_compare_and_hash_equal() {
        use std::collections::hash_map::DefaultHasher;

        // Build the same logical clock in both representations: the heap
        // one via a transient 10th component later zeroed out.
        let inline = vc(&[1, 2, 3]);
        let mut heap = vc(&[1, 2, 3]);
        heap.set(9, 5);
        heap.set(9, 0);
        assert!(matches!(heap.entries, Entries::Heap(_)));
        assert_eq!(inline, heap);
        assert!(inline.le(&heap) && heap.le(&inline));

        let hash = |clock: &VectorClock| {
            let mut hasher = DefaultHasher::new();
            clock.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(hash(&inline), hash(&heap));
    }

    #[test]
    fn join_across_representations() {
        let mut wide = vc(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 7]);
        assert!(matches!(wide.entries, Entries::Heap(_)));
        let mut narrow = vc(&[5]);
        narrow.join(&wide);
        assert_eq!(narrow.get(0), 5);
        assert_eq!(narrow.get(9), 7);
        wide.join(&vc(&[9]));
        assert_eq!(wide.get(0), 9);
    }

    #[test]
    fn normalized_length_fast_path_is_sound() {
        // a knows t5, b does not: a ⋠ b decided by length alone.
        let a = vc(&[1, 0, 0, 0, 0, 1]);
        let b = vc(&[1]);
        assert!(!a.le(&b));
        assert!(b.le(&a));
    }

    #[test]
    fn epoch_accessor_matches_component() {
        let clock = vc(&[3, 9]);
        assert_eq!(clock.epoch(1), Epoch::new(1, 9));
        assert_eq!(clock.epoch(4), Epoch::new(4, 0));
    }
}
