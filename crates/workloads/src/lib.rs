//! CIL models of the paper's benchmark programs (§5.1, Table 1).
//!
//! The paper evaluates RaceFuzzer on ~600 KLoC of Java: three Java Grande
//! kernels, five applications, the Jigsaw web server, and five JDK
//! collection classes under multi-threaded test drivers. Those programs
//! cannot be run on this substrate, so each is modelled as a CIL program
//! that reproduces its **concurrency skeleton**: the same synchronization
//! idioms (monitors, busy-wait barriers, lock-protected flag handshakes,
//! fork/join phases), the same documented real races, and the same bugs
//! (cache4j's `_sleep` race, the JDK `containsAll`-over-unlocked-iterator
//! exceptions). What is *not* modelled is the numeric payload — a model's
//! "computation" is a few arithmetic statements — so SLOC and wall-clock
//! columns are reported for the models themselves.
//!
//! Each [`Workload`] records the paper's Table 1 row ([`PaperRow`]) so the
//! benchmark harness can print paper-vs-measured side by side.
//!
//! # Examples
//!
//! ```
//! let raytracer = workloads::raytracer();
//! assert_eq!(raytracer.name, "raytracer");
//! assert!(raytracer.program.proc_named(raytracer.entry).is_some());
//! ```

pub mod apps;
pub mod collections;
pub mod figures;
pub mod jgf;

pub use figures::{figure1, figure2};

use cil::Program;

/// The paper's Table 1 row for a benchmark (the numbers this reproduction
/// aims to match in *shape*, not absolutely).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperRow {
    /// Reported source lines of the Java original.
    pub sloc: u32,
    /// Column 6: potential races from hybrid detection.
    pub hybrid_races: u32,
    /// Column 7: real races confirmed by RaceFuzzer.
    pub real_races: u32,
    /// Column 8: races known from prior studies (`None` = no prior study).
    pub known_races: Option<u32>,
    /// Column 9: racing pairs for which RaceFuzzer raised an exception.
    pub rf_exceptions: u32,
    /// Column 10: exceptions under the default/simple scheduler.
    pub simple_exceptions: u32,
    /// Column 11: probability of hitting a race (`None` = no real race).
    pub probability: Option<f64>,
}

/// One modelled benchmark: a compiled CIL program plus metadata.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name, matching the paper's Table 1.
    pub name: &'static str,
    /// What the model reproduces and what it simplifies.
    pub description: &'static str,
    /// The compiled model.
    pub program: Program,
    /// The CIL source `program` was compiled from — lets static tools
    /// (`cil lint`, the pruning benchmark) re-analyze the fixture and map
    /// diagnostics back to source spans.
    pub source: String,
    /// Entry procedure for the test driver.
    pub entry: &'static str,
    /// The paper's Table 1 row for comparison.
    pub paper: PaperRow,
}

/// All fourteen Table 1 benchmarks, in the paper's row order.
pub fn all() -> Vec<Workload> {
    vec![
        jgf::moldyn(),
        jgf::raytracer(),
        jgf::montecarlo(),
        apps::cache4j(),
        apps::sor(),
        apps::hedc(),
        apps::weblech(),
        apps::jspider(),
        apps::jigsaw(),
        collections::vector(),
        collections::linked_list(),
        collections::array_list(),
        collections::hash_set(),
        collections::tree_set(),
    ]
}

/// Convenience re-exports of the individual constructors.
pub use apps::{cache4j, hedc, jigsaw, jspider, sor, weblech};
pub use collections::{array_list, hash_set, linked_list, tree_set, vector};
pub use jgf::{moldyn, montecarlo, raytracer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_fourteen_table1_rows() {
        let workloads = all();
        assert_eq!(workloads.len(), 14);
        let names: Vec<&str> = workloads.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "moldyn",
                "raytracer",
                "montecarlo",
                "cache4j",
                "sor",
                "hedc",
                "weblech",
                "jspider",
                "jigsaw",
                "Vector 1.1",
                "LinkedList",
                "ArrayList",
                "HashSet",
                "TreeSet",
            ]
        );
    }

    #[test]
    fn every_workload_entry_exists_and_takes_no_params() {
        for workload in all() {
            let proc = workload
                .program
                .proc_named(workload.entry)
                .unwrap_or_else(|| panic!("{}: entry missing", workload.name));
            assert_eq!(
                workload.program.procs[proc.index()].param_count, 0,
                "{}: entry takes params",
                workload.name
            );
        }
    }

    #[test]
    fn every_workload_terminates_under_default_scheduling() {
        // A fair preemptive scheduler models the JVM default; the paper
        // notes (§4) that the JGF kernels' busy-wait barriers *require*
        // scheduler fairness, so run-to-block would spin forever on moldyn.
        for workload in all() {
            let outcome = interp::run_with(
                &workload.program,
                workload.entry,
                &mut interp::RoundRobinScheduler::new(23),
                &mut interp::NullObserver,
                interp::Limits::default(),
            )
            .unwrap_or_else(|error| panic!("{}: {error}", workload.name));
            assert!(
                matches!(
                    outcome.termination,
                    interp::Termination::AllExited | interp::Termination::Deadlock(_)
                ),
                "{}: {:?}",
                workload.name,
                outcome.termination
            );
        }
    }
}
