//! Models of the paper's application benchmarks (Table 1 rows 4–9).
//!
//! Two synchronization idioms recur across these applications and drive
//! the shape of the paper's results:
//!
//! * **Flag handshake with unprotected payload**: a producer writes payload
//!   fields, then sets a lock-protected flag; consumers spin on the flag
//!   (under the lock) and read the payload without a common lock. The
//!   payload accesses are *really* ordered but the hybrid detector reports
//!   them (locksets are disjoint and it tracks no lock edges) — classic
//!   false alarms that RaceFuzzer refutes by failing to bring them
//!   together.
//! * **Genuinely unprotected shared fields** (stats counters, status
//!   flags): real races, confirmed by RaceFuzzer, some of which lead to
//!   exceptions (`cache4j`'s interrupted cleaner, `weblech`'s stale index,
//!   `hedc`'s null result).

use crate::{PaperRow, Workload};
use std::fmt::Write as _;

/// Builds the flag-handshake false-alarm pattern: `count` payload fields
/// written by the producer before a lock-protected `ready` flag, and read
/// by the consumer after spinning on the flag. Returns
/// `(class_fields, writes, reads)` source fragments.
fn handshake_fragments(obj: &str, count: usize) -> (String, String, String) {
    let mut fields = String::new();
    let mut writes = String::new();
    let mut reads = String::new();
    for i in 0..count {
        if i > 0 {
            fields.push_str(", ");
        }
        let _ = write!(fields, "p{i}");
        let _ = writeln!(writes, "            @hs_write{i} {obj}.p{i} = {i} + 1;");
        let _ = writeln!(reads, "            @hs_read{i} var r{i} = {obj}.p{i};");
    }
    (fields, writes, reads)
}

/// `cache4j`: a thread-safe object cache with a cleaner thread. Reproduces
/// the paper's §5.3 bug: the cleaner sets `_sleep = true` **without** the
/// cache lock and then sleeps; the main thread checks `_sleep` under the
/// lock and interrupts the cleaner — if the interrupt lands while the
/// cleaner is in `sleep`, an uncaught `InterruptedException` kills it.
/// A second real (benign) race is the unprotected `hits` statistics
/// counter. The remaining predictions are handshake false alarms.
pub fn cache4j() -> Workload {
    let (fields, writes, reads) = handshake_fragments("c", 8);
    let source = format!(
        r#"
        class Lock {{ }}
        class Cache {{ sleepflag, hits, ready, {fields} }}
        global glock;

        proc cleaner(c, rounds) {{
            // Wait for cache configuration (handshake: false alarms).
            var ok = false;
            while (!ok) {{
                sync (glock) {{ ok = c.ready; }}
            }}
{reads}
            var i = 0;
            while (i < rounds) {{
                // The cache4j bug: _sleep set without the cache lock...
                @sleep_set c.sleepflag = true;
                // ...then an interruptible sleep NOT protected by a catch.
                sleep 5;
                sync (c) {{ c.sleepflag = false; }}
                @hits_inc c.hits = c.hits + 1;
                i = i + 1;
            }}
        }}

        proc main() {{
            glock = new Lock;
            var c = new Cache;
            c.sleepflag = false;
            c.hits = 0;
            c.ready = false;
            var t = spawn cleaner(c, 2);
{writes}
            sync (glock) {{ c.ready = true; }}
            var i = 0;
            while (i < 3) {{
                sync (c) {{
                    @sleep_check var s = c.sleepflag;
                    if (s) {{ interrupt t; }}
                }}
                @hits_read var h = c.hits;
                i = i + 1;
            }}
            join t;
        }}
        "#
    );
    Workload {
        name: "cache4j",
        description: "object cache with cleaner thread; _sleep flag race \
                      causes an uncaught InterruptedException (paper §5.3)",
        program: cil::compile(&source).expect("cache4j compiles"),
        source: source.to_string(),
        entry: "main",
        paper: PaperRow {
            sloc: 3_897,
            hybrid_races: 18,
            real_races: 2,
            known_races: None,
            rf_exceptions: 1,
            simple_exceptions: 0,
            probability: Some(1.00),
        },
    }
}

/// `sor`: successive over-relaxation. Two workers update disjoint halves
/// of a grid, publish completion through lock-protected flags, and then
/// read each other's half. All eight predicted races (four grid cells in
/// each direction) are ordered by the handshake — **zero real races**,
/// matching the paper's row exactly (8 potential, 0 real).
pub fn sor() -> Workload {
    let source = r#"
        class Lock { }
        global slock;
        global grid;
        global a_done = false;
        global b_done = false;

        proc sor_a() {
            @aw0 grid[0] = 1;
            @aw1 grid[1] = 2;
            @aw2 grid[2] = 3;
            @aw3 grid[3] = 4;
            sync (slock) { a_done = true; }
            var ok = false;
            while (!ok) { sync (slock) { ok = b_done; } }
            @ar4 var v4 = grid[4];
            @ar5 var v5 = grid[5];
            @ar6 var v6 = grid[6];
            @ar7 var v7 = grid[7];
            assert v4 + v5 + v6 + v7 == 26 : "boundary sum";
        }

        proc sor_b() {
            @bw4 grid[4] = 5;
            @bw5 grid[5] = 6;
            @bw6 grid[6] = 7;
            @bw7 grid[7] = 8;
            sync (slock) { b_done = true; }
            var ok = false;
            while (!ok) { sync (slock) { ok = a_done; } }
            @br0 var v0 = grid[0];
            @br1 var v1 = grid[1];
            @br2 var v2 = grid[2];
            @br3 var v3 = grid[3];
            assert v0 + v1 + v2 + v3 == 10 : "boundary sum";
        }

        proc main() {
            slock = new Lock;
            grid = new [8];
            var i = 0;
            while (i < 8) { grid[i] = 0; i = i + 1; }
            var ta = spawn sor_a();
            var tb = spawn sor_b();
            join ta;
            join tb;
        }
    "#;
    Workload {
        name: "sor",
        description: "successive over-relaxation: handshake-ordered halves; \
                      every prediction is a false alarm (0 real races)",
        program: cil::compile(source).expect("sor compiles"),
        source: source.to_string(),
        entry: "main",
        paper: PaperRow {
            sloc: 17_689,
            hybrid_races: 8,
            real_races: 0,
            known_races: Some(0),
            rf_exceptions: 0,
            simple_exceptions: 0,
            probability: None,
        },
    }
}

/// `hedc`: web-crawler kernel. The real bug: the main thread publishes a
/// task result object with no synchronization; the worker reads it after a
/// prologue and dereferences it — resolving the race read-first yields a
/// `NullPointerException`. Metadata fields published through a proper
/// handshake provide the eight false alarms.
pub fn hedc() -> Workload {
    let (fields, writes, reads) = handshake_fragments("task", 8);
    let source = format!(
        r#"
        class Lock {{ }}
        class Task {{ result, ready, {fields} }}
        class Result {{ value }}
        global hlock;
        global task;

        proc worker() {{
            var tk = task;
            // Prologue: local work that keeps the racy read away from the
            // start of the thread (rarely lost under a plain scheduler).
            var acc = 0;
            var i = 0;
            while (i < 8) {{ acc = acc + i; i = i + 1; }}
            // The real race: result published without synchronization.
            @result_read var r = tk.result;
            var v = r.value;                    // NPE when read wins
            // Metadata arrives through a proper handshake (false alarms).
            var ok = false;
            while (!ok) {{
                sync (hlock) {{ ok = tk.ready; }}
            }}
{reads}
        }}

        proc main() {{
            hlock = new Lock;
            var tk = new Task;
            tk.ready = false;
            tk.result = null;
            task = tk;
            var t = spawn worker();
            var res = new Result;
            res.value = 99;
            @result_write tk.result = res;
{writes}
            sync (hlock) {{ tk.ready = true; }}
            join t;
        }}
        "#
    );
    Workload {
        name: "hedc",
        description: "web-crawler kernel: unsynchronized result publication \
                      → NullPointerException; handshake metadata false alarms",
        program: cil::compile(&source).expect("hedc compiles"),
        source: source.to_string(),
        entry: "main",
        paper: PaperRow {
            sloc: 29_948,
            hybrid_races: 9,
            real_races: 1,
            known_races: Some(1),
            rf_exceptions: 1,
            simple_exceptions: 0,
            probability: Some(0.86),
        },
    }
}

/// `weblech`: multi-threaded website downloader. The queue is locked, but
/// a reporter thread reads `qsize` twice without the lock — a stale
/// re-read between a downloader's pop yields `queue[-1]`
/// (`ArrayIndexOutOfBoundsException`). The window is short, so even a
/// plain random scheduler finds the exception occasionally (the paper's
/// "Simple" column shows 1 for weblech).
pub fn weblech() -> Workload {
    let (fields, writes, reads) = handshake_fragments("cfg", 10);
    let source = format!(
        r#"
        class Lock {{ }}
        class Config {{ ready, {fields} }}
        global qlock;
        global queue;
        global qsize = 0;
        global cfg;

        proc downloader() {{
            var ok = false;
            while (!ok) {{
                sync (qlock) {{ ok = cfg.ready; }}
            }}
{reads}
            sync (qlock) {{
                var n = qsize;
                if (n > 0) {{
                    @size_dec qsize = n - 1;
                    var item = queue[n - 1];
                }}
            }}
        }}

        proc reporter() {{
            // Starts once the spider is configured, like the downloader —
            // so both threads contend on the queue at the same time.
            var ok = false;
            while (!ok) {{
                sync (qlock) {{ ok = cfg.ready; }}
            }}
            @size_peek var s = qsize;
            if (s > 0) {{
                // Bug: qsize is re-read without the lock after a status
                // report; a concurrent pop makes this queue[-1]. The report
                // formatting widens the window enough that even an
                // undirected random scheduler occasionally hits it (the
                // paper's "Simple" column shows 1 for weblech).
                var report = s * 10;
                report = report + 1;
                report = report + 2;
                report = report + 3;
                @stale_index var last = queue[qsize - 1];
            }}
        }}

        proc main() {{
            qlock = new Lock;
            queue = new [4];
            queue[0] = 7;
            qsize = 1;
            cfg = new Config;
            cfg.ready = false;
            var d = spawn downloader();
            var r = spawn reporter();
{writes}
            sync (qlock) {{ cfg.ready = true; }}
            join d;
            join r;
        }}
        "#
    );
    Workload {
        name: "weblech",
        description: "website downloader: unlocked double-read of the queue \
                      size → ArrayIndexOutOfBoundsException",
        program: cil::compile(&source).expect("weblech compiles"),
        source: source.to_string(),
        entry: "main",
        paper: PaperRow {
            sloc: 35_175,
            hybrid_races: 27,
            real_races: 2,
            known_races: Some(1),
            rf_exceptions: 1,
            simple_exceptions: 1,
            probability: Some(0.83),
        },
    }
}

/// `jspider`: configurable web spider. Plugin configuration is published
/// through a proper lock-protected handshake; every one of the twelve
/// predicted races is a false alarm (the paper reports 29 potential,
/// 0 real).
pub fn jspider() -> Workload {
    let (fields, writes, reads) = handshake_fragments("plugin", 12);
    let source = format!(
        r#"
        class Lock {{ }}
        class Plugin {{ ready, {fields} }}
        global plock;
        global plugin;

        proc dispatcher() {{
            var ok = false;
            while (!ok) {{
                sync (plock) {{ ok = plugin.ready; }}
            }}
{reads}
        }}

        proc main() {{
            plock = new Lock;
            plugin = new Plugin;
            plugin.ready = false;
            var t1 = spawn dispatcher();
            var t2 = spawn dispatcher();
{writes}
            sync (plock) {{ plugin.ready = true; }}
            join t1;
            join t2;
        }}
        "#
    );
    Workload {
        name: "jspider",
        description: "web spider: plugin config handshake; all predictions \
                      are false alarms (0 real races)",
        program: cil::compile(&source).expect("jspider compiles"),
        source: source.to_string(),
        entry: "main",
        paper: PaperRow {
            sloc: 64_933,
            hybrid_races: 29,
            real_races: 0,
            known_races: None,
            rf_exceptions: 0,
            simple_exceptions: 0,
            probability: None,
        },
    }
}

/// `jigsaw`: W3C's web server — the paper's largest benchmark (547
/// potential, 36 real). Modelled at ~1/10 scale, preserving the ratio of
/// false alarms (40 handshake-published server-configuration fields) to
/// real benign races (6 unprotected request/connection counters touched by
/// two handler threads, 2 statement pairs each).
pub fn jigsaw() -> Workload {
    let (fields, writes, reads) = handshake_fragments("server", 40);
    let mut counter_globals = String::new();
    let mut counter_updates = String::new();
    for i in 0..6 {
        let _ = writeln!(counter_globals, "        global counter{i} = 0;");
        let _ = writeln!(
            counter_updates,
            "            @counter_rmw{i} counter{i} = counter{i} + id;"
        );
    }
    let source = format!(
        r#"
        class Lock {{ }}
        class Server {{ ready, {fields} }}
        global jlock;
        global server;
{counter_globals}

        proc handler(id) {{
            var ok = false;
            while (!ok) {{
                sync (jlock) {{ ok = server.ready; }}
            }}
{reads}
            // Request statistics: genuinely unprotected (benign).
{counter_updates}
        }}

        proc main() {{
            jlock = new Lock;
            server = new Server;
            server.ready = false;
            var h1 = spawn handler(1);
            var h2 = spawn handler(2);
{writes}
            sync (jlock) {{ server.ready = true; }}
            join h1;
            join h2;
        }}
        "#
    );
    Workload {
        name: "jigsaw",
        description: "W3C web server at ~1/10 scale: 40 handshake false \
                      alarms + 6 unprotected counters (12 real benign pairs)",
        program: cil::compile(&source).expect("jigsaw compiles"),
        source: source.to_string(),
        entry: "main",
        paper: PaperRow {
            sloc: 381_348,
            hybrid_races: 547,
            real_races: 36,
            known_races: None,
            rf_exceptions: 0,
            simple_exceptions: 0,
            probability: Some(0.90),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::{run_with, Limits, NullObserver, RandomScheduler, Termination};

    #[test]
    fn apps_compile_and_terminate_under_random_schedules() {
        for workload in [cache4j(), sor(), hedc(), weblech(), jspider(), jigsaw()] {
            for seed in 0..3 {
                let outcome = run_with(
                    &workload.program,
                    workload.entry,
                    &mut RandomScheduler::seeded(seed),
                    &mut NullObserver,
                    Limits::default(),
                )
                .unwrap();
                assert_eq!(
                    outcome.termination,
                    Termination::AllExited,
                    "{} seed {seed}",
                    workload.name
                );
            }
        }
    }

    #[test]
    fn sor_asserts_hold_in_all_schedules() {
        let workload = sor();
        for seed in 0..10 {
            let outcome = run_with(
                &workload.program,
                workload.entry,
                &mut RandomScheduler::seeded(seed),
                &mut NullObserver,
                Limits::default(),
            )
            .unwrap();
            assert!(
                outcome.uncaught.is_empty(),
                "sor must never fail its boundary asserts: seed {seed}"
            );
        }
    }

    #[test]
    fn weblech_bug_tags_are_accesses() {
        let program = weblech().program;
        assert!(program
            .instr(program.tagged_access("size_dec"))
            .is_memory_write());
        // stale_index covers a load of qsize and a load of the element; the
        // *racy* access of interest is the unlocked qsize load.
        assert!(!program.tagged("stale_index").is_empty());
    }
}
