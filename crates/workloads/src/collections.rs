//! A CIL collection library reproducing the JDK bugs of the paper's §5.3
//! (Table 1 rows 10–14).
//!
//! The paper's finding: `Collections.synchronizedList`/`synchronizedSet`
//! wrap every method of the underlying collection in a monitor on the
//! wrapper — **except** the ones inherited from `AbstractCollection`
//! (`containsAll`, `equals`, `addAll`), which iterate their *argument*
//! collection without holding its lock. A concurrent structural
//! modification of the argument then interferes with the iterator's
//! `modCount`/`size`/node reads, raising `ConcurrentModificationException`
//! or `NoSuchElementException`.
//!
//! This module implements the same structure in CIL:
//!
//! * array-backed lists (`al_*` — ArrayList), node-based lists (`ll_*` —
//!   LinkedList), bucket-of-chains sets (`hs_*` — HashSet), and
//!   sorted-array sets (`ts_*` — TreeSet, modelling the ordered iteration
//!   of a red-black tree with a sorted array), all unsynchronized;
//! * `Wrap`-object monitors (`s*_*` procedures) that lock the wrapper on
//!   every call — but `*_contains_all` locks only the receiver, exactly
//!   like the JDK decorator;
//! * `vec_*` — a JDK-1.1-style `Vector`, internally synchronized except
//!   for the historical unsynchronized `size()`/`isEmpty()` fast paths
//!   (real but benign races; the paper reports 9 real races and no
//!   exceptions for Vector).

use crate::{PaperRow, Workload};

/// The shared collection library (unsynchronized cores + synchronized
/// wrappers). Drivers are appended per benchmark.
const LIB: &str = r#"
    class Wrap { inner }
    class List { storage, size, modcount }
    class Node { value, next }
    class LList { head, size, modcount }
    class Set { buckets, nbuckets, size, modcount }

    proc wrap_new(inner) {
        var w = new Wrap;
        w.inner = inner;
        return w;
    }

    // ---------- array-backed list (ArrayList core) ----------

    proc al_new(cap) {
        var l = new List;
        l.storage = new [cap];
        l.size = 0;
        l.modcount = 0;
        return l;
    }

    proc al_add(l, v) {
        @al_add_size_read var n = l.size;
        @al_add_elem l.storage[n] = v;
        @al_add_size l.size = n + 1;
        @al_add_mod l.modcount = l.modcount + 1;
    }

    proc al_clear(l) {
        @al_clear_size l.size = 0;
        @al_clear_mod l.modcount = l.modcount + 1;
    }

    proc al_get(l, i) {
        var r = null;
        @al_get_size var n = l.size;
        if (i < n) { @al_get_elem r = l.storage[i]; }
        return r;
    }

    proc al_contains(l, v) {
        var i = 0;
        var found = false;
        @al_con_size var n = l.size;
        while (i < n) {
            @al_con_elem var c = l.storage[i];
            if (c == v) { found = true; }
            i = i + 1;
        }
        return found;
    }

    // AbstractCollection.containsAll: iterates l2 with a fail-fast
    // iterator. The caller is expected to hold l1's monitor only.
    proc al_contains_all(l1, l2) {
        @al_ca_mod var mc = l2.modcount;
        @al_ca_size var n = l2.size;
        var i = 0;
        while (i < n) {
            @al_ca_modcheck var mc2 = l2.modcount;
            if (mc2 != mc) { throw ConcurrentModificationException; }
            @al_ca_sizecheck var n2 = l2.size;
            if (i >= n2) { throw NoSuchElementException; }
            @al_ca_elem var v = l2.storage[i];
            var found = al_contains(l1, v);
            if (!found) { return false; }
            i = i + 1;
        }
        return true;
    }

    // AbstractList.equals: element-wise comparison through a fail-fast
    // iterator over l2 — same unlocked-argument bug as containsAll.
    proc al_equals(l1, l2) {
        @al_eq_size1 var n1 = l1.size;
        @al_eq_mod var mc = l2.modcount;
        @al_eq_size2 var n2 = l2.size;
        if (n1 != n2) { return false; }
        var i = 0;
        while (i < n1) {
            @al_eq_modcheck var mc2 = l2.modcount;
            if (mc2 != mc) { throw ConcurrentModificationException; }
            @al_eq_sizecheck var n3 = l2.size;
            if (i >= n3) { throw NoSuchElementException; }
            @al_eq_mine var a = l1.storage[i];
            @al_eq_theirs var b = l2.storage[i];
            if (a != b) { return false; }
            i = i + 1;
        }
        return true;
    }

    // Synchronized wrapper (Collections.synchronizedList).
    proc sal_add(w, v) { sync (w) { al_add(w.inner, v); } }
    proc sal_clear(w) { sync (w) { al_clear(w.inner); } }
    proc sal_get(w, i) {
        var r;
        sync (w) { r = al_get(w.inner, i); }
        return r;
    }
    // THE BUG: only w1 is locked; w2.inner is iterated bare.
    proc sal_contains_all(w1, w2) {
        var r;
        sync (w1) { r = al_contains_all(w1.inner, w2.inner); }
        return r;
    }
    proc sal_equals(w1, w2) {
        var r;
        sync (w1) { r = al_equals(w1.inner, w2.inner); }
        return r;
    }

    // ---------- node-based list (LinkedList core) ----------

    proc ll_new() {
        var l = new LList;
        l.head = null;
        l.size = 0;
        l.modcount = 0;
        return l;
    }

    proc ll_add_front(l, v) {
        var n = new Node;
        n.value = v;
        @ll_add_next n.next = l.head;
        @ll_add_head l.head = n;
        @ll_add_size l.size = l.size + 1;
        @ll_add_mod l.modcount = l.modcount + 1;
    }

    proc ll_clear(l) {
        @ll_clear_head l.head = null;
        @ll_clear_size l.size = 0;
        @ll_clear_mod l.modcount = l.modcount + 1;
    }

    proc ll_contains(l, v) {
        var found = false;
        var n = l.head;
        while (n != null) {
            var c = n.value;
            if (c == v) { found = true; }
            n = n.next;
        }
        return found;
    }

    proc ll_contains_all(l1, l2) {
        @ll_ca_mod var mc = l2.modcount;
        @ll_ca_size var sz = l2.size;
        @ll_ca_head var node = l2.head;
        var i = 0;
        while (i < sz) {
            @ll_ca_modcheck var mc2 = l2.modcount;
            if (mc2 != mc) { throw ConcurrentModificationException; }
            if (node == null) { throw NoSuchElementException; }
            @ll_ca_val var v = node.value;
            var found = ll_contains(l1, v);
            if (!found) { return false; }
            @ll_ca_next node = node.next;
            i = i + 1;
        }
        return true;
    }

    // AbstractList.equals over node chains.
    proc ll_equals(l1, l2) {
        @ll_eq_size1 var n1 = l1.size;
        @ll_eq_mod var mc = l2.modcount;
        @ll_eq_size2 var n2 = l2.size;
        if (n1 != n2) { return false; }
        @ll_eq_myhead var mine = l1.head;
        @ll_eq_head var theirs = l2.head;
        var i = 0;
        while (i < n1) {
            @ll_eq_modcheck var mc2 = l2.modcount;
            if (mc2 != mc) { throw ConcurrentModificationException; }
            if (theirs == null) { throw NoSuchElementException; }
            var a = mine.value;
            @ll_eq_val var b = theirs.value;
            if (a != b) { return false; }
            mine = mine.next;
            @ll_eq_next theirs = theirs.next;
            i = i + 1;
        }
        return true;
    }

    proc sll_add(w, v) { sync (w) { ll_add_front(w.inner, v); } }
    proc sll_clear(w) { sync (w) { ll_clear(w.inner); } }
    proc sll_contains_all(w1, w2) {
        var r;
        sync (w1) { r = ll_contains_all(w1.inner, w2.inner); }
        return r;
    }
    proc sll_equals(w1, w2) {
        var r;
        sync (w1) { r = ll_equals(w1.inner, w2.inner); }
        return r;
    }

    // ---------- hash set (bucket array of node chains) ----------

    proc hs_new(nbuckets) {
        var s = new Set;
        s.buckets = new [nbuckets];
        s.nbuckets = nbuckets;
        var i = 0;
        while (i < nbuckets) {
            var chain = ll_new();
            s.buckets[i] = chain;
            i = i + 1;
        }
        s.size = 0;
        s.modcount = 0;
        return s;
    }

    proc hs_contains(s, v) {
        @hs_con_nb var nb = s.nbuckets;
        var b = v % nb;
        @hs_con_bucket var chain = s.buckets[b];
        var r = ll_contains(chain, v);
        return r;
    }

    proc hs_add(s, v) {
        var present = hs_contains(s, v);
        if (!present) {
            @hs_add_nb var nb = s.nbuckets;
            var b = v % nb;
            @hs_add_bucket var chain = s.buckets[b];
            ll_add_front(chain, v);
            @hs_add_size s.size = s.size + 1;
            @hs_add_mod s.modcount = s.modcount + 1;
        }
    }

    proc hs_clear(s) {
        @hs_clear_nb var nb = s.nbuckets;
        var i = 0;
        while (i < nb) {
            @hs_clear_bucket var chain = s.buckets[i];
            ll_clear(chain);
            i = i + 1;
        }
        @hs_clear_size s.size = 0;
        @hs_clear_mod s.modcount = s.modcount + 1;
    }

    // HashSet iterator: size-driven, like java.util.HashMap.HashIterator —
    // runs out of buckets when the set shrinks mid-iteration (NSEE) and
    // fail-fasts on modCount (CME).
    proc hs_contains_all(s1, s2) {
        @hs_ca_mod var mc = s2.modcount;
        @hs_ca_size var remaining = s2.size;
        @hs_ca_nb var nb = s2.nbuckets;
        var b = 0;
        var node = null;
        while (remaining > 0) {
            @hs_ca_modcheck var mc2 = s2.modcount;
            if (mc2 != mc) { throw ConcurrentModificationException; }
            while (node == null) {
                if (b >= nb) { throw NoSuchElementException; }
                @hs_ca_bucket var chain = s2.buckets[b];
                @hs_ca_head node = chain.head;
                b = b + 1;
            }
            @hs_ca_val var v = node.value;
            var found = hs_contains(s1, v);
            if (!found) { return false; }
            @hs_ca_next node = node.next;
            remaining = remaining - 1;
        }
        return true;
    }

    // AbstractCollection.addAll: iterates s2 bare while inserting into s1.
    proc hs_add_all(s1, s2) {
        @hs_aa_mod var mc = s2.modcount;
        @hs_aa_size var remaining = s2.size;
        @hs_aa_nb var nb = s2.nbuckets;
        var b = 0;
        var node = null;
        while (remaining > 0) {
            @hs_aa_modcheck var mc2 = s2.modcount;
            if (mc2 != mc) { throw ConcurrentModificationException; }
            while (node == null) {
                if (b >= nb) { throw NoSuchElementException; }
                @hs_aa_bucket var chain = s2.buckets[b];
                @hs_aa_head node = chain.head;
                b = b + 1;
            }
            @hs_aa_val var v = node.value;
            hs_add(s1, v);
            @hs_aa_next node = node.next;
            remaining = remaining - 1;
        }
    }

    proc shs_add(w, v) { sync (w) { hs_add(w.inner, v); } }
    proc shs_clear(w) { sync (w) { hs_clear(w.inner); } }
    proc shs_contains_all(w1, w2) {
        var r;
        sync (w1) { r = hs_contains_all(w1.inner, w2.inner); }
        return r;
    }
    proc shs_add_all(w1, w2) {
        sync (w1) { hs_add_all(w1.inner, w2.inner); }
    }

    // ---------- tree set (sorted array models ordered iteration) ----------

    proc ts_new(cap) {
        var l = al_new(cap);
        return l;
    }

    proc ts_insert_pos(l, v) {
        @ts_pos_size var n = l.size;
        var i = 0;
        var pos = n;
        var looking = true;
        while (looking) {
            if (i >= n) { looking = false; }
            else {
                @ts_pos_elem var c = l.storage[i];
                if (c >= v) { pos = i; looking = false; }
                i = i + 1;
            }
        }
        return pos;
    }

    proc ts_add(l, v) {
        var pos = ts_insert_pos(l, v);
        @ts_add_size_read var n = l.size;
        var j = n;
        while (j > pos) {
            @ts_shift_read var moved = l.storage[j - 1];
            @ts_shift_write l.storage[j] = moved;
            j = j - 1;
        }
        @ts_add_elem l.storage[pos] = v;
        @ts_add_size l.size = n + 1;
        @ts_add_mod l.modcount = l.modcount + 1;
    }

    proc ts_clear(l) {
        @ts_clear_size l.size = 0;
        @ts_clear_mod l.modcount = l.modcount + 1;
    }

    proc ts_contains(l, v) {
        var r = al_contains(l, v);
        return r;
    }

    proc ts_contains_all(l1, l2) {
        @ts_ca_mod var mc = l2.modcount;
        @ts_ca_size var n = l2.size;
        var i = 0;
        while (i < n) {
            @ts_ca_modcheck var mc2 = l2.modcount;
            if (mc2 != mc) { throw ConcurrentModificationException; }
            @ts_ca_sizecheck var n2 = l2.size;
            if (i >= n2) { throw NoSuchElementException; }
            @ts_ca_elem var v = l2.storage[i];
            var found = ts_contains(l1, v);
            if (!found) { return false; }
            i = i + 1;
        }
        return true;
    }

    // AbstractCollection.addAll over the sorted array.
    proc ts_add_all(l1, l2) {
        @ts_aa_mod var mc = l2.modcount;
        @ts_aa_size var n = l2.size;
        var i = 0;
        while (i < n) {
            @ts_aa_modcheck var mc2 = l2.modcount;
            if (mc2 != mc) { throw ConcurrentModificationException; }
            @ts_aa_sizecheck var n2 = l2.size;
            if (i >= n2) { throw NoSuchElementException; }
            @ts_aa_elem var v = l2.storage[i];
            ts_add(l1, v);
            i = i + 1;
        }
    }

    proc sts_add(w, v) { sync (w) { ts_add(w.inner, v); } }
    proc sts_clear(w) { sync (w) { ts_clear(w.inner); } }
    proc sts_contains_all(w1, w2) {
        var r;
        sync (w1) { r = ts_contains_all(w1.inner, w2.inner); }
        return r;
    }
    proc sts_add_all(w1, w2) {
        sync (w1) { ts_add_all(w1.inner, w2.inner); }
    }

    // ---------- Vector (JDK 1.1 style: internally synchronized) ----------

    proc vec_add(l, v) {
        sync (l) {
            var n = l.size;
            l.storage[n] = v;
            l.size = n + 1;
            l.modcount = l.modcount + 1;
        }
    }

    proc vec_remove_last(l) {
        sync (l) {
            var n = l.size;
            if (n > 0) { l.size = n - 1; l.modcount = l.modcount + 1; }
        }
    }

    proc vec_get(l, i) {
        var r = null;
        sync (l) {
            var n = l.size;
            if (i < n) { r = l.storage[i]; }
        }
        return r;
    }

    // The historically unsynchronized fast paths: real, benign races.
    proc vec_size(l) {
        @vec_size_read var n = l.size;
        return n;
    }

    proc vec_is_empty(l) {
        @vec_empty_read var n = l.size;
        return n == 0;
    }

    proc vec_last_index(l) {
        @vec_last_read var n = l.size;
        return n - 1;
    }

    proc vec_has_room(l, cap) {
        @vec_room_read var n = l.size;
        return n < cap;
    }

    proc vec_mod_count(l) {
        @vec_mod_read var m = l.modcount;
        return m;
    }
"#;

fn full_source(driver: &str) -> String {
    format!("{LIB}\n{driver}")
}

fn compile_with_driver(driver: &str) -> cil::Program {
    cil::compile(&full_source(driver)).expect("collections workload compiles")
}

/// `Vector` (JDK 1.1): every mutator holds the vector's monitor, but the
/// `size()`/`isEmpty()` fast paths read `size` bare. All predicted races
/// are real and none can raise an exception — matching the paper's row
/// (9 potential, 9 real, 0 exceptions).
pub fn vector() -> Workload {
    let driver = r#"
        global vec;

        proc vec_mutator() {
            vec_add(vec, 1);
            vec_add(vec, 2);
            vec_remove_last(vec);
            vec_add(vec, 3);
        }

        proc vec_reader() {
            var n = vec_size(vec);
            var e = vec_is_empty(vec);
            var v = vec_get(vec, 0);
            var last = vec_last_index(vec);
            var room = vec_has_room(vec, 8);
            var mods = vec_mod_count(vec);
            var n2 = vec_size(vec);
        }

        proc main() {
            vec = al_new(8);
            var t1 = spawn vec_mutator();
            var t2 = spawn vec_reader();
            join t1;
            join t2;
        }
    "#;
    Workload {
        name: "Vector 1.1",
        description: "JDK 1.1 Vector: synchronized mutators, unsynchronized \
                      size()/isEmpty() fast paths (real benign races)",
        program: compile_with_driver(driver),
        source: full_source(driver),
        entry: "main",
        paper: PaperRow {
            sloc: 709,
            hybrid_races: 9,
            real_races: 9,
            known_races: Some(9),
            rf_exceptions: 0,
            simple_exceptions: 0,
            probability: Some(0.94),
        },
    }
}

/// `LinkedList` under `Collections.synchronizedList`: `containsAll`
/// iterates the argument's node chain without its lock while another
/// thread clears/extends it → `ConcurrentModificationException` /
/// `NoSuchElementException` (paper §5.3).
pub fn linked_list() -> Workload {
    let driver = r#"
        global w1;
        global w2;
        global w3;

        proc ll_iterating_thread() {
            var r = sll_contains_all(w1, w2);
        }

        proc ll_equals_thread() {
            // w3 mirrors w2's initial contents, so equals really iterates.
            var r = sll_equals(w3, w2);
        }

        proc ll_mutating_thread() {
            sll_clear(w2);
            sll_add(w2, 5);
        }

        proc main() {
            var l1 = ll_new();
            var l2 = ll_new();
            var l3 = ll_new();
            w1 = wrap_new(l1);
            w2 = wrap_new(l2);
            w3 = wrap_new(l3);
            sll_add(w1, 1);
            sll_add(w1, 2);
            sll_add(w1, 5);
            sll_add(w2, 1);
            sll_add(w2, 2);
            sll_add(w3, 1);
            sll_add(w3, 2);
            var t1 = spawn ll_iterating_thread();
            var t2 = spawn ll_mutating_thread();
            var t3 = spawn ll_equals_thread();
            join t1;
            join t2;
            join t3;
        }
    "#;
    Workload {
        name: "LinkedList",
        description: "synchronized LinkedList: containsAll iterates the \
                      argument unlocked → CME / NoSuchElementException",
        program: compile_with_driver(driver),
        source: full_source(driver),
        entry: "main",
        paper: PaperRow {
            sloc: 5_979,
            hybrid_races: 12,
            real_races: 12,
            known_races: None,
            rf_exceptions: 5,
            simple_exceptions: 0,
            probability: Some(0.85),
        },
    }
}

/// `ArrayList` under `Collections.synchronizedList`: same decorator bug
/// over the array-backed core.
pub fn array_list() -> Workload {
    let driver = r#"
        global w1;
        global w2;
        global w3;

        proc al_iterating_thread() {
            var r = sal_contains_all(w1, w2);
        }

        proc al_equals_thread() {
            var r = sal_equals(w3, w2);
        }

        proc al_mutating_thread() {
            sal_clear(w2);
            sal_add(w2, 9);
        }

        proc main() {
            var l1 = al_new(8);
            var l2 = al_new(8);
            var l3 = al_new(8);
            w1 = wrap_new(l1);
            w2 = wrap_new(l2);
            w3 = wrap_new(l3);
            sal_add(w1, 1);
            sal_add(w1, 2);
            sal_add(w1, 9);
            sal_add(w2, 1);
            sal_add(w2, 2);
            sal_add(w3, 1);
            sal_add(w3, 2);
            var t1 = spawn al_iterating_thread();
            var t2 = spawn al_mutating_thread();
            var t3 = spawn al_equals_thread();
            join t1;
            join t2;
            join t3;
        }
    "#;
    Workload {
        name: "ArrayList",
        description: "synchronized ArrayList: containsAll iterates the \
                      argument unlocked → CME / NoSuchElementException",
        program: compile_with_driver(driver),
        source: full_source(driver),
        entry: "main",
        paper: PaperRow {
            sloc: 5_866,
            hybrid_races: 14,
            real_races: 7,
            known_races: None,
            rf_exceptions: 7,
            simple_exceptions: 0,
            probability: Some(0.55),
        },
    }
}

/// `HashSet` under `Collections.synchronizedSet`: the size-driven bucket
/// iterator runs out of chains when the set shrinks mid-iteration.
pub fn hash_set() -> Workload {
    let driver = r#"
        global w1;
        global w2;

        proc hs_iterating_thread() {
            var r = shs_contains_all(w1, w2);
        }

        proc hs_add_all_thread() {
            shs_add_all(w1, w2);
        }

        proc hs_mutating_thread() {
            shs_clear(w2);
            shs_add(w2, 6);
        }

        proc main() {
            var s1 = hs_new(2);
            var s2 = hs_new(2);
            w1 = wrap_new(s1);
            w2 = wrap_new(s2);
            shs_add(w1, 1);
            shs_add(w1, 2);
            shs_add(w1, 6);
            shs_add(w2, 1);
            shs_add(w2, 2);
            var t1 = spawn hs_iterating_thread();
            var t2 = spawn hs_mutating_thread();
            var t3 = spawn hs_add_all_thread();
            join t1;
            join t2;
            join t3;
        }
    "#;
    Workload {
        name: "HashSet",
        description: "synchronized HashSet: size-driven bucket iterator vs \
                      concurrent clear/add → CME / NoSuchElementException",
        program: compile_with_driver(driver),
        source: full_source(driver),
        entry: "main",
        paper: PaperRow {
            sloc: 7_086,
            hybrid_races: 11,
            real_races: 11,
            known_races: None,
            rf_exceptions: 8,
            simple_exceptions: 1,
            probability: Some(0.54),
        },
    }
}

/// `TreeSet` under `Collections.synchronizedSet`: ordered iteration
/// modelled over a sorted array; the insertion shift makes mid-iteration
/// interference more intricate (the paper reports TreeSet's lowest hit
/// probability, 0.41).
pub fn tree_set() -> Workload {
    let driver = r#"
        global w1;
        global w2;

        proc ts_iterating_thread() {
            var r = sts_contains_all(w1, w2);
        }

        proc ts_add_all_thread() {
            sts_add_all(w1, w2);
        }

        proc ts_mutating_thread() {
            sts_add(w2, 0);
            sts_clear(w2);
        }

        proc main() {
            var s1 = ts_new(8);
            var s2 = ts_new(8);
            w1 = wrap_new(s1);
            w2 = wrap_new(s2);
            sts_add(w1, 1);
            sts_add(w1, 2);
            sts_add(w1, 0);
            sts_add(w2, 2);
            sts_add(w2, 1);
            var t1 = spawn ts_iterating_thread();
            var t2 = spawn ts_mutating_thread();
            var t3 = spawn ts_add_all_thread();
            join t1;
            join t2;
            join t3;
        }
    "#;
    Workload {
        name: "TreeSet",
        description: "synchronized TreeSet (sorted-array model): ordered \
                      iteration vs concurrent add/clear → CME / NSEE",
        program: compile_with_driver(driver),
        source: full_source(driver),
        entry: "main",
        paper: PaperRow {
            sloc: 7_532,
            hybrid_races: 13,
            real_races: 8,
            known_races: None,
            rf_exceptions: 8,
            simple_exceptions: 1,
            probability: Some(0.41),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::{run_with, Limits, NullObserver, RunToBlockScheduler, Termination};

    #[test]
    fn collection_drivers_run_clean_sequentially() {
        // Under run-to-block scheduling each driver thread runs to
        // completion in turn, so the single-threaded semantics of the
        // library (the developers' mental model!) must hold: no exceptions.
        for workload in [vector(), linked_list(), array_list(), hash_set(), tree_set()] {
            let outcome = run_with(
                &workload.program,
                workload.entry,
                &mut RunToBlockScheduler::new(),
                &mut NullObserver,
                Limits::default(),
            )
            .unwrap();
            assert_eq!(
                outcome.termination,
                Termination::AllExited,
                "{}",
                workload.name
            );
            assert!(
                outcome.uncaught.is_empty(),
                "{}: single-threaded-order run must not throw: {:?}",
                workload.name,
                outcome.uncaught
            );
        }
    }

    #[test]
    fn library_operations_behave_single_threaded() {
        let program = compile_with_driver(
            r#"
            proc main() {
                var l = al_new(4);
                al_add(l, 10);
                al_add(l, 20);
                var a = al_get(l, 0);
                var b = al_get(l, 1);
                print a;
                print b;
                var c = al_contains(l, 20);
                assert c : "contains added element";
                var d = al_contains(l, 99);
                assert !d : "does not contain absent element";

                var ll = ll_new();
                ll_add_front(ll, 1);
                ll_add_front(ll, 2);
                var e = ll_contains(ll, 1);
                assert e : "linked list contains 1";
                ll_clear(ll);
                var f = ll_contains(ll, 1);
                assert !f : "cleared list is empty";

                var s = hs_new(2);
                hs_add(s, 3);
                hs_add(s, 4);
                hs_add(s, 3);
                var g = s.size;
                assert g == 2 : "set deduplicates";
                var h = hs_contains(s, 4);
                assert h : "set contains 4";

                var t = ts_new(8);
                ts_add(t, 5);
                ts_add(t, 1);
                ts_add(t, 3);
                var v0 = t.storage[0];
                var v1 = t.storage[1];
                var v2 = t.storage[2];
                assert v0 == 1 : "sorted order 0";
                assert v1 == 3 : "sorted order 1";
                assert v2 == 5 : "sorted order 2";
            }
            "#,
        );
        let outcome = run_with(
            &program,
            "main",
            &mut RunToBlockScheduler::new(),
            &mut NullObserver,
            Limits::default(),
        )
        .unwrap();
        assert!(
            outcome.uncaught.is_empty(),
            "library self-test: {:?} / output {:?}",
            outcome.uncaught,
            outcome.output
        );
        assert_eq!(outcome.output, vec!["10", "20"]);
    }

    #[test]
    fn contains_all_true_and_false_cases() {
        let program = compile_with_driver(
            r#"
            proc main() {
                var l1 = al_new(8);
                var l2 = al_new(8);
                al_add(l1, 1);
                al_add(l1, 2);
                al_add(l1, 3);
                al_add(l2, 1);
                al_add(l2, 3);
                var yes = al_contains_all(l1, l2);
                assert yes : "superset containsAll";
                al_add(l2, 9);
                var no = al_contains_all(l1, l2);
                assert !no : "missing element";
            }
            "#,
        );
        let outcome = run_with(
            &program,
            "main",
            &mut RunToBlockScheduler::new(),
            &mut NullObserver,
            Limits::default(),
        )
        .unwrap();
        assert!(outcome.uncaught.is_empty(), "{:?}", outcome.uncaught);
    }
}
