//! Models of the three Java Grande Forum kernels (Table 1 rows 1–3).
//!
//! The JGF kernels synchronize with **busy-wait barriers** (JGF's
//! `TournamentBarrier`/`SimpleBarrier` spin on flag variables), which is
//! the source of both their benign real races (the spinning reads) and the
//! hybrid detector's false alarms (cross-phase accesses really ordered by
//! the barrier, which lockset+HB analysis cannot see).

use crate::{PaperRow, Workload};
use std::fmt::Write as _;

/// The shared busy-wait barrier, in CIL. A central sense-reversing barrier:
/// arrival bookkeeping is lock-protected, but the wait is a **spin on an
/// unprotected read** of `generation` (tags `bar_spin0`/`bar_spin`), which
/// genuinely races with the lock-protected bump (`bar_bump`) — the classic
/// benign JGF race.
const BARRIER: &str = r#"
    class Barrier { count, generation, parties }

    proc barrier_new(parties) {
        var b = new Barrier;
        b.count = parties;
        b.parties = parties;
        b.generation = 0;
        return b;
    }

    proc barrier_await(b) {
        var gen;
        sync (b) {
            gen = b.generation;
            b.count = b.count - 1;
            if (b.count == 0) {
                b.count = b.parties;
                @bar_bump b.generation = gen + 1;
            }
        }
        @bar_spin0 var cur = b.generation;
        while (cur == gen) {
            @bar_spin cur = b.generation;
        }
    }
"#;

/// `moldyn`: molecular dynamics. Two worker threads alternate
/// force-update and reduction phases separated by busy-wait barriers.
///
/// * **Real benign races (2 statement pairs)**: the barrier's spinning
///   reads against the generation bump — the paper reports exactly "2 real
///   races (but benign) missed by previous dynamic analysis tools".
/// * **False alarms**: thread 0's phase-2 read of the whole `forces` array
///   overlaps thread 1's phase-1 partition writes; they are ordered by the
///   barrier, which the hybrid detector cannot see.
/// * The paper also observed **livelocks** on moldyn caused by postponing a
///   thread whose peer spins on a barrier; the livelock monitor (§4)
///   handles the same situation here.
pub fn moldyn() -> Workload {
    // Unrolled per-cell force updates: cell k is written by worker k % 2
    // through its own statement site, and *every* cell is read back by both
    // workers in the reduction phase — 8 distinct statement pairs that are
    // all barrier-ordered (false alarms for the hybrid detector), matching
    // the paper's shape of many potential races with only the two benign
    // barrier races being real.
    const CELLS: usize = 8;
    let mut phase1 = String::new();
    let mut phase2 = String::new();
    for cell in 0..CELLS {
        let owner = cell % 2;
        let _ = writeln!(
            phase1,
            "                if (id == {owner}) {{ @w{cell} f[{cell}] = f[{cell}] + id + 1; }}"
        );
        let _ = writeln!(
            phase2,
            "                @r{cell} var v{cell} = f[{cell}];\n                sum = sum + v{cell};"
        );
    }
    let source = format!(
        r#"
        {BARRIER}
        class Lock {{ }}
        global bar;
        global mdlock;
        global forces;
        global epot = 0;
        global checksum = 0;

        proc md_worker(id, iters) {{
            var f = forces;
            var i = 0;
            while (i < iters) {{
                // Phase 1: each worker updates its own cells.
{phase1}
                barrier_await(bar);
                // Reduction phase: both workers read every cell
                // (barrier-ordered against phase 1 — hybrid false alarms)
                // and combine under the lock.
                var sum = 0;
{phase2}
                sync (mdlock) {{ epot = epot + sum; }}
                barrier_await(bar);
                if (id == 0) {{ checksum = sum; }}
                barrier_await(bar);
                i = i + 1;
            }}
        }}

        proc main() {{
            mdlock = new Lock;
            bar = barrier_new(2);
            forces = new [{CELLS}];
            var j = 0;
            while (j < len(forces)) {{ forces[j] = 0; j = j + 1; }}
            var t0 = spawn md_worker(0, 2);
            var t1 = spawn md_worker(1, 2);
            join t0;
            join t1;
        }}
        "#
    );
    Workload {
        name: "moldyn",
        description: "JGF molecular dynamics: busy-wait barrier phases; \
                      2 real benign barrier races; cross-phase false alarms",
        program: cil::compile(&source).expect("moldyn compiles"),
        source: source.to_string(),
        entry: "main",
        paper: PaperRow {
            sloc: 1_352,
            hybrid_races: 59,
            real_races: 2,
            known_races: Some(0),
            rf_exceptions: 0,
            simple_exceptions: 0,
            probability: Some(1.00),
        },
    }
}

/// `raytracer`: JGF ray tracer. Its documented real race is the unprotected
/// `checksum` accumulation shared by all render threads — two statement
/// pairs (load/store and store/store of the read-modify-write), both real,
/// neither raising an exception. The paper reports exactly 2 potential and
/// 2 real races.
pub fn raytracer() -> Workload {
    let source = r#"
        global checksum = 0;

        proc render(id, rows) {
            var i = 0;
            var local = 0;
            while (i < rows) {
                local = local + id * 16 + i;
                i = i + 1;
            }
            // JGF raytracer's real bug: checksum += local without a lock.
            @checksum_rmw checksum = checksum + local;
        }

        proc main() {
            var a = spawn render(0, 3);
            var b = spawn render(1, 3);
            join a;
            join b;
        }
    "#;
    Workload {
        name: "raytracer",
        description: "JGF ray tracer: unprotected checksum accumulation — \
                      all potential races are real, none harmful",
        program: cil::compile(source).expect("raytracer compiles"),
        source: source.to_string(),
        entry: "main",
        paper: PaperRow {
            sloc: 1_924,
            hybrid_races: 2,
            real_races: 2,
            known_races: Some(2),
            rf_exceptions: 0,
            simple_exceptions: 0,
            probability: Some(1.00),
        },
    }
}

/// `montecarlo`: JGF Monte Carlo simulation. The master publishes a config
/// object through a lock-protected `ready` flag; workers spin on the flag
/// and then read the config **without** holding a common lock on the
/// fields. Those four field reads are hybrid false alarms (ordered by the
/// handshake, invisible to lockset+HB). The one real race is the final
/// unprotected `last_result` store, executed by both workers.
pub fn montecarlo() -> Workload {
    let source = r#"
        class Lock { }
        class Cfg { p1, p2, p3, p4 }
        global rlock;
        global cfg;
        global ready = false;
        global total = 0;
        global last_result = 0;

        proc mc_worker(id) {
            var ok = false;
            while (!ok) {
                sync (rlock) { ok = ready; }
            }
            @cfg_read1 var a = cfg.p1;
            @cfg_read2 var b = cfg.p2;
            @cfg_read3 var c = cfg.p3;
            @cfg_read4 var d = cfg.p4;
            var r = a + b + c + d + id;
            sync (rlock) { total = total + r; }
            @result_store last_result = r;
        }

        proc main() {
            rlock = new Lock;
            cfg = new Cfg;
            var t1 = spawn mc_worker(1);
            var t2 = spawn mc_worker(2);
            @cfg_write1 cfg.p1 = 10;
            @cfg_write2 cfg.p2 = 20;
            @cfg_write3 cfg.p3 = 30;
            @cfg_write4 cfg.p4 = 40;
            sync (rlock) { ready = true; }
            join t1;
            join t2;
        }
    "#;
    Workload {
        name: "montecarlo",
        description: "JGF Monte Carlo: flag-handshake config publication \
                      (false alarms) + one real unprotected result store",
        program: cil::compile(source).expect("montecarlo compiles"),
        source: source.to_string(),
        entry: "main",
        paper: PaperRow {
            sloc: 3_619,
            hybrid_races: 5,
            real_races: 1,
            known_races: Some(1),
            rf_exceptions: 0,
            simple_exceptions: 0,
            probability: Some(1.00),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::{run_with, Limits, NullObserver, RandomScheduler, Termination};

    fn runs_clean(workload: &Workload, seed: u64) {
        let outcome = run_with(
            &workload.program,
            workload.entry,
            &mut RandomScheduler::seeded(seed),
            &mut NullObserver,
            Limits::default(),
        )
        .unwrap();
        assert_eq!(
            outcome.termination,
            Termination::AllExited,
            "{} seed {seed}: {:?}",
            workload.name,
            outcome.termination
        );
        assert!(
            outcome.uncaught.is_empty(),
            "{} seed {seed}: {:?}",
            workload.name,
            outcome.uncaught
        );
    }

    #[test]
    fn jgf_kernels_run_clean_under_random_schedules() {
        for workload in [moldyn(), raytracer(), montecarlo()] {
            for seed in 0..5 {
                runs_clean(&workload, seed);
            }
        }
    }

    #[test]
    fn moldyn_barrier_tags_exist() {
        let program = moldyn().program;
        assert!(program
            .instr(program.tagged_access("bar_bump"))
            .is_memory_write());
        assert!(!program
            .instr(program.tagged_access("bar_spin"))
            .is_memory_write());
    }

    #[test]
    fn raytracer_checksum_is_deterministic_modulo_race() {
        // The race is on a commutative accumulation: the *final* value is
        // either the full sum (no lost update) or one thread's partial sum.
        let workload = raytracer();
        for seed in 0..10 {
            let outcome = run_with(
                &workload.program,
                workload.entry,
                &mut RandomScheduler::seeded(seed),
                &mut NullObserver,
                Limits::default(),
            )
            .unwrap();
            assert_eq!(outcome.termination, Termination::AllExited);
        }
    }
}
