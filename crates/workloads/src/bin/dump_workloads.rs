//! `dump-workloads` — write every workload's CIL source to a directory.
//!
//! ```text
//! dump-workloads <dir>
//! ```
//!
//! Each Table-1 model becomes `<dir>/<name>.cil` (names sanitized to
//! `[a-z0-9_]` so they survive shell globs and the `cil-lint` baseline
//! format, which is space-separated). CI uses this to run `cil-lint` over
//! the workload fixtures with a committed baseline: the models contain
//! *deliberate* races, so the baseline records the expected diagnostics
//! and any drift — a new warning or a silently fixed one — fails the job.

use std::process::ExitCode;

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let Some(dir) = std::env::args().nth(1) else {
        eprintln!("usage: dump-workloads <dir>");
        return ExitCode::from(2);
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(error) = std::fs::create_dir_all(&dir) {
        eprintln!("dump-workloads: cannot create `{}`: {error}", dir.display());
        return ExitCode::from(2);
    }
    let workloads = workloads::all();
    for workload in &workloads {
        let path = dir.join(format!("{}.cil", sanitize(workload.name)));
        if let Err(error) = std::fs::write(&path, &workload.source) {
            eprintln!("dump-workloads: cannot write `{}`: {error}", path.display());
            return ExitCode::from(2);
        }
    }
    println!(
        "dump-workloads: wrote {} fixture(s) to `{}`",
        workloads.len(),
        dir.display()
    );
    ExitCode::SUCCESS
}
