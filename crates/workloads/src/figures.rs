//! The paper's worked examples: Figure 1 and Figure 2.

use cil::build::{dsl::*, ProgramBuilder};
use cil::Program;

/// Figure 1 of the paper: one real race (`z`), one access pair protected by
/// a common lock (`y`), and one *false* hybrid alarm (`x`, implicitly
/// synchronized through `y`). ERROR1 is reachable through the real race;
/// ERROR2 is unreachable.
///
/// Tags follow the paper's statement numbering: `s1` (`x = 1`), `s3`
/// (`y = 1`), `s5` (read of `z`), `s7` (`z = 1`), `s9` (read of `y`),
/// `s10` (read of `x`).
pub fn figure1() -> Program {
    cil::compile(
        r#"
        // Figure 1, PLDI 2008: "A program with a real race".
        class Lock { }
        global l;
        global x = 0;
        global y = 0;
        global z = 0;

        proc thread1() {
            @s1 x = 1;                       // 1: x = 1
            sync (l) { @s3 y = 1; }          // 2-4: lock(L); y = 1; unlock(L)
            @s5 var t = z;                   // 5: if (z == 1)
            if (t == 1) { throw Error1; }    // 6: ERROR1
        }

        proc thread2() {
            @s7 z = 1;                       // 7: z = 1
            sync (l) {                       // 8: lock(L)
                @s9 var t = y;               // 9: if (y == 1)
                if (t == 1) {
                    @s10 var u = x;          // 10: if (x != 1)
                    if (u != 1) { throw Error2; }   // 11: ERROR2
                }
            }                                // 14: unlock(L)
        }

        proc main() {
            l = new Lock;
            var t1 = spawn thread1();
            var t2 = spawn thread2();
            join t1;
            join t2;
        }
        "#,
    )
    .expect("figure 1 compiles")
}

/// Figure 2 of the paper: a hard-to-reproduce real race. `pad` no-op
/// statements (the paper's `f1()…f5()`) separate the racing read from the
/// start of the program, making the race exponentially unlikely under a
/// plain random scheduler while RaceFuzzer creates it with probability 1.
///
/// Tags: `s8` (the racy read of `x`), `s10` (the racy write).
pub fn figure2(pad: usize) -> Program {
    let mut builder = ProgramBuilder::new();
    builder.class("Lock", []);
    builder.global("l");
    builder.global_init("x", cil::ast::Literal::Int(0));

    // thread2 = the paper's right column: 10: x = 1; 11-13: lock; f6; unlock.
    builder.proc_decl(
        "thread2",
        [],
        block([
            tag("s10", assign_name("x", int(1))),
            sync(name("l"), block([nop()])),
        ]),
    );

    // thread1 = the paper's left column, run by main after the spawn:
    // 1: lock(L); 2-6: f1()..f5(); 7: unlock(L); 8: if (x == 0) 9: ERROR.
    let mut stmts = vec![
        assign_rhs("l", new_object("Lock")),
        var("t", spawn("thread2", [])),
    ];
    let padding: Vec<_> = (0..pad).map(|_| nop()).collect();
    stmts.push(sync(name("l"), block(padding)));
    stmts.push(tag("s8", var("v", expr(name("x")))));
    stmts.push(if_(eq(name("v"), int(0)), block([throw("Error")])));
    stmts.push(join(name("t")));
    builder.proc_decl("main", [], block(stmts));

    builder.compile().expect("figure 2 compiles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_expected_tags() {
        let program = figure1();
        for tag in ["s1", "s3", "s5", "s7", "s9", "s10"] {
            let access = program.tagged_access(tag);
            assert!(program.instr(access).is_memory_access(), "{tag}");
        }
        assert!(program.instr(program.tagged_access("s1")).is_memory_write());
        assert!(!program.instr(program.tagged_access("s5")).is_memory_write());
    }

    #[test]
    fn figure2_padding_scales_instruction_count() {
        let small = figure2(1).instr_count();
        let large = figure2(101).instr_count();
        assert_eq!(large - small, 100);
    }
}
