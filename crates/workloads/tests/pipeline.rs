//! End-to-end two-phase pipeline over every Table-1 workload model,
//! asserting the qualitative *shape* of the paper's results: which
//! benchmarks have real races, which predictions are false alarms, which
//! races raise which exceptions, and that RaceFuzzer never "confirms" a
//! race that cannot happen.

use racefuzzer::{analyze, AnalyzeOptions, FuzzConfig};
use workloads::Workload;

fn quick_options(trials: usize) -> AnalyzeOptions {
    AnalyzeOptions {
        trials_per_pair: trials,
        fuzz: FuzzConfig {
            postpone_limit: 300,
            max_steps: 300_000,
            ..FuzzConfig::default()
        },
        ..AnalyzeOptions::default()
    }
}

fn analyze_workload(workload: &Workload, trials: usize) -> racefuzzer::AnalysisReport {
    analyze(&workload.program, workload.entry, &quick_options(trials))
        .unwrap_or_else(|error| panic!("{}: {error}", workload.name))
}

#[test]
fn raytracer_all_predictions_are_real_and_benign() {
    let workload = workloads::raytracer();
    let report = analyze_workload(&workload, 20);
    assert_eq!(report.potential.len(), 2, "checksum load/store + store/store");
    assert_eq!(report.real_races().len(), 2, "both confirmed");
    assert!(report.exception_pairs().is_empty(), "benign races");
    // Paper column 11: probability 1.00.
    for pair in &report.pairs {
        assert_eq!(pair.hits, pair.trials, "hit in every trial");
    }
}

#[test]
fn montecarlo_one_real_race_among_false_alarms() {
    let workload = workloads::montecarlo();
    let report = analyze_workload(&workload, 20);
    assert_eq!(report.potential.len(), 5, "4 handshake false alarms + 1 real");
    let real = report.real_races();
    assert_eq!(real.len(), 1, "only the result store is real: {real:?}");
    let store = workload.program.tagged_access("result_store");
    assert!(real[0].contains(store));
    assert!(report.exception_pairs().is_empty());
}

#[test]
fn moldyn_barrier_races_are_real_but_benign() {
    let workload = workloads::moldyn();
    let report = analyze_workload(&workload, 12);
    let real = report.real_races();
    // The two spinning reads against the generation bump (the paper's "2
    // real races (but benign)").
    let bump = workload.program.tagged_access("bar_bump");
    let confirmed_barrier: Vec<_> = real
        .iter()
        .filter(|pair| pair.contains(bump))
        .collect();
    assert_eq!(
        confirmed_barrier.len(),
        2,
        "spin-read/bump pairs confirmed: {real:?}"
    );
    // Cross-phase cell accesses are predicted but never confirmed: cell 1
    // is written by worker 1 (`w1`) and read by both workers (`r1`),
    // ordered by the barrier in every real execution.
    let write = *workload
        .program
        .tagged_accesses("w1")
        .last()
        .expect("w1 covers a store");
    let read = workload.program.tagged_access("r1");
    assert!(
        report
            .potential
            .iter()
            .any(|pair| pair.contains(write) && pair.contains(read)),
        "cross-phase false alarm predicted: {:?}",
        report.potential
    );
    assert!(
        !real.iter().any(|pair| pair.contains(write) && pair.contains(read)),
        "…but never confirmed"
    );
    // Many false alarms, few real races — the paper's moldyn shape (59 vs 2).
    assert!(
        report.potential.len() >= real.len() + 6,
        "potential {} vs real {}",
        report.potential.len(),
        real.len()
    );
    assert!(report.exception_pairs().is_empty());
}

#[test]
fn sor_has_eight_predictions_and_zero_real_races() {
    let workload = workloads::sor();
    let report = analyze_workload(&workload, 12);
    assert_eq!(report.potential.len(), 8, "{:?}", report.potential);
    assert!(
        report.real_races().is_empty(),
        "all sor predictions are false alarms: {:?}",
        report.real_races()
    );
    assert!(report.exception_pairs().is_empty());
}

#[test]
fn jspider_every_prediction_is_a_false_alarm() {
    let workload = workloads::jspider();
    let report = analyze_workload(&workload, 10);
    assert_eq!(report.potential.len(), 12);
    assert!(report.real_races().is_empty());
}

#[test]
fn cache4j_sleep_race_raises_interrupted_exception() {
    let workload = workloads::cache4j();
    let report = analyze_workload(&workload, 30);
    let real = report.real_races();
    assert!(real.len() >= 2, "sleep flag + hits counter: {real:?}");
    let sleep_set = workload.program.tagged_access("sleep_set");
    let sleep_check = workload.program.tagged_access("sleep_check");
    assert!(
        real.iter()
            .any(|pair| pair.contains(sleep_set) && pair.contains(sleep_check)),
        "the paper's §5.3 cache4j race is confirmed"
    );
    assert!(
        report
            .exception_names()
            .contains("InterruptedException"),
        "the race kills the cleaner: {:?}",
        report.exception_names()
    );
    assert!(report.potential.len() > real.len(), "handshake false alarms");
}

#[test]
fn hedc_null_result_race_raises_npe() {
    let workload = workloads::hedc();
    let report = analyze_workload(&workload, 30);
    let real = report.real_races();
    let read = workload.program.tagged_access("result_read");
    let write = workload.program.tagged_access("result_write");
    assert!(
        real.iter()
            .any(|pair| pair.contains(read) && pair.contains(write)),
        "result publication race confirmed: {real:?}"
    );
    assert!(
        report.exception_names().contains("NullPointerException"),
        "{:?}",
        report.exception_names()
    );
    // The metadata handshake pairs are all false alarms.
    assert!(report.potential.len() >= real.len() + 8);
}

#[test]
fn weblech_stale_index_race_raises_bounds_exception() {
    let workload = workloads::weblech();
    let report = analyze_workload(&workload, 30);
    assert!(
        report
            .exception_names()
            .contains("ArrayIndexOutOfBoundsException"),
        "{:?}",
        report.exception_names()
    );
    assert!(!report.real_races().is_empty());
    assert!(report.potential.len() > report.real_races().len());
}

#[test]
fn jigsaw_counters_real_config_false() {
    let workload = workloads::jigsaw();
    let report = analyze_workload(&workload, 8);
    assert_eq!(report.potential.len(), 52, "40 false alarms + 12 counter pairs");
    assert_eq!(report.real_races().len(), 12, "{:?}", report.real_races());
    assert!(report.exception_pairs().is_empty());
}

#[test]
fn vector_races_all_real_none_harmful() {
    let workload = workloads::vector();
    let report = analyze_workload(&workload, 20);
    assert!(!report.potential.is_empty());
    assert_eq!(
        report.real_races().len(),
        report.potential.len(),
        "every Vector prediction is real: {:?}",
        report.potential
    );
    assert!(report.exception_pairs().is_empty(), "benign fast-path reads");
}

#[test]
fn linked_list_contains_all_bug_reproduces() {
    let workload = workloads::linked_list();
    let report = analyze_workload(&workload, 30);
    let names = report.exception_names();
    assert!(
        names.contains("ConcurrentModificationException"),
        "{names:?}"
    );
    assert!(!report.real_races().is_empty());
}

#[test]
fn array_list_contains_all_bug_reproduces() {
    let workload = workloads::array_list();
    let report = analyze_workload(&workload, 30);
    let names = report.exception_names();
    assert!(
        names.contains("ConcurrentModificationException")
            || names.contains("NoSuchElementException"),
        "{names:?}"
    );
    assert!(!report.real_races().is_empty());
}

#[test]
fn hash_set_contains_all_bug_reproduces() {
    let workload = workloads::hash_set();
    let report = analyze_workload(&workload, 30);
    let names = report.exception_names();
    assert!(
        names.contains("ConcurrentModificationException")
            || names.contains("NoSuchElementException"),
        "{names:?}"
    );
}

#[test]
fn tree_set_contains_all_bug_reproduces() {
    let workload = workloads::tree_set();
    let report = analyze_workload(&workload, 30);
    let names = report.exception_names();
    assert!(
        names.contains("ConcurrentModificationException")
            || names.contains("NoSuchElementException"),
        "{names:?}"
    );
}

#[test]
fn no_workload_analysis_reports_a_deadlock() {
    // None of the Table-1 models contains a real deadlock; the postponing
    // scheduler must not introduce one (Algorithm 1's eviction rules).
    for workload in [
        workloads::raytracer(),
        workloads::montecarlo(),
        workloads::sor(),
        workloads::vector(),
    ] {
        let report = analyze_workload(&workload, 10);
        assert!(
            report.deadlock_pairs().is_empty(),
            "{}: {:?}",
            workload.name,
            report.deadlock_pairs()
        );
    }
}
