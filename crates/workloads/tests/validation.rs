//! Every workload model must satisfy the flat-IR structural invariants —
//! the dynamic analyses assume them, so a corrupt model would corrupt the
//! reproduction silently.

use cil::validate::validate;

#[test]
fn every_workload_program_validates() {
    for workload in workloads::all() {
        let errors = validate(&workload.program);
        assert!(
            errors.is_empty(),
            "{}: {:?}",
            workload.name,
            errors
        );
    }
}

#[test]
fn figure_programs_validate() {
    assert!(validate(&workloads::figure1()).is_empty());
    for pad in [0, 50, 200] {
        assert!(validate(&workloads::figure2(pad)).is_empty(), "pad {pad}");
    }
}

#[test]
fn every_workload_memory_tag_resolves() {
    // Each model documents its racy statements through tags; the ones
    // below must resolve to exactly one shared access. (Statements like
    // `cfg.p1 = 1` legitimately cover two — the global load of `cfg` and
    // the field store — and are addressed with `tagged_accesses` instead.)
    let cases: &[(&str, &[&str])] = &[
        ("moldyn", &["bar_bump", "bar_spin", "r1"]),
        ("montecarlo", &["result_store"]),
        ("cache4j", &["sleep_set", "sleep_check"]),
        ("hedc", &["result_read", "result_write"]),
        ("weblech", &["size_peek", "size_dec"]),
    ];
    let workloads = workloads::all();
    for (name, tags) in cases {
        let workload = workloads
            .iter()
            .find(|workload| workload.name == *name)
            .unwrap_or_else(|| panic!("{name} registered"));
        for tag in *tags {
            let instr = workload.program.tagged_access(tag);
            assert!(
                workload.program.instr(instr).is_memory_access(),
                "{name}/{tag}"
            );
        }
    }
}
