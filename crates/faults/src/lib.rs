//! Deterministic fault injection ("failpoints") for crash-safety testing.
//!
//! Durable-state code paths — checkpoint writes, artifact emission,
//! interpreter resource accounting — declare **named sites** by calling
//! [`hit`]. A test or torture harness installs a [`Schedule`] that says
//! *inject a fault at the Nth hit of site S*; everything else returns
//! [`Fault::None`] and costs one relaxed atomic load.
//!
//! Three fault kinds model the ways durable state actually gets hurt:
//!
//! * [`FaultAction::Error`] — the operation reports failure (an injected
//!   `EIO`); callers must degrade or retry.
//! * [`FaultAction::ShortWrite`] — the write silently truncates to a
//!   prefix, modelling a torn write published by a crash or a lying disk;
//!   readers must detect it (CRC) instead of trusting the bytes.
//! * [`FaultAction::Abort`] — the process dies **at** the site
//!   ([`std::process::abort`]), modelling a kill -9 / OOM-kill / power
//!   loss at an arbitrary durable-state instant.
//!
//! Schedules are deterministic: a `(site, nth-hit, action)` triple fires
//! exactly once, and seed-driven generation ([`Schedule::seeded`]) makes a
//! whole torture sweep reproducible from one integer.
//!
//! # Build cost
//!
//! The crate has two personalities, chosen by the `enabled` cargo feature:
//!
//! * **feature off (default)** — [`hit`] is an inline `Fault::None`
//!   constant; no statics, no counters, no branches survive optimization.
//!   This is the configuration benchmarks and production builds use.
//! * **feature on** — sites consult a global registry. Unarmed (no
//!   schedule installed) the cost is a single relaxed atomic load per hit.
//!
//! Tests that need live failpoints enable the feature through their
//! `dev-dependencies`, so `cargo test` exercises injection while plain
//! `cargo build --release` compiles it out.
//!
//! # Examples
//!
//! ```
//! use faults::{Fault, FaultAction, Plan, Schedule};
//!
//! // Fire an error on the 2nd hit of "checkpoint.write".
//! let schedule = Schedule::new(vec![Plan {
//!     site: "checkpoint.write".to_owned(),
//!     hit: 2,
//!     action: FaultAction::Error,
//! }]);
//! faults::install(schedule);
//! if faults::compiled() {
//!     assert_eq!(faults::hit("checkpoint.write"), Fault::None);
//!     assert_eq!(faults::hit("checkpoint.write"), Fault::Error);
//!     assert_eq!(faults::hit("checkpoint.write"), Fault::None);
//! }
//! faults::clear();
//! ```

use std::fmt;
use std::str::FromStr;

/// What a scheduled fault does when its site+hit is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation reports failure (injected I/O error).
    Error,
    /// The write keeps only this many bytes of its buffer (a torn write).
    ShortWrite(u64),
    /// The process aborts at the site.
    Abort,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Error => f.write_str("err"),
            FaultAction::ShortWrite(keep) => write!(f, "short:{keep}"),
            FaultAction::Abort => f.write_str("abort"),
        }
    }
}

impl FromStr for FaultAction {
    type Err = ScheduleParseError;

    fn from_str(text: &str) -> Result<Self, ScheduleParseError> {
        if text == "err" {
            return Ok(FaultAction::Error);
        }
        if text == "abort" {
            return Ok(FaultAction::Abort);
        }
        if let Some(keep) = text.strip_prefix("short:") {
            let keep = keep
                .parse::<u64>()
                .map_err(|_| ScheduleParseError(format!("bad short-write length '{keep}'")))?;
            return Ok(FaultAction::ShortWrite(keep));
        }
        Err(ScheduleParseError(format!("unknown fault action '{text}'")))
    }
}

/// What [`hit`] tells the *caller* to do. `Abort` never reaches the caller
/// — the process dies inside [`hit`] — so the returned enum only has the
/// survivable outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No fault; proceed normally.
    None,
    /// Fail the operation as if the kernel returned an error.
    Error,
    /// Truncate the write to this many bytes and report success.
    ShortWrite(u64),
}

/// One scheduled injection: fire `action` on the `hit`-th (1-based) hit of
/// `site` in this process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    /// The named site, e.g. `"campaign.checkpoint.write"`.
    pub site: String,
    /// 1-based hit count at which the fault fires.
    pub hit: u64,
    /// What happens.
    pub action: FaultAction,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}={}", self.site, self.hit, self.action)
    }
}

/// A malformed schedule string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleParseError(pub String);

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault schedule: {}", self.0)
    }
}

impl std::error::Error for ScheduleParseError {}

/// A set of scheduled injections for one process lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    plans: Vec<Plan>,
}

impl Schedule {
    /// A schedule from explicit plans.
    pub fn new(plans: Vec<Plan>) -> Self {
        Schedule { plans }
    }

    /// The scheduled plans.
    pub fn plans(&self) -> &[Plan] {
        &self.plans
    }

    /// `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Parses `site@hit=action` entries separated by `;` (or `,`), e.g.
    /// `campaign.checkpoint.write@3=abort;campaign.artifact.write@1=short:7`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleParseError`] on malformed entries.
    pub fn parse(text: &str) -> Result<Self, ScheduleParseError> {
        let mut plans = Vec::new();
        for entry in text.split([';', ',']) {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (site_hit, action) = entry
                .split_once('=')
                .ok_or_else(|| ScheduleParseError(format!("missing '=' in '{entry}'")))?;
            let (site, hit) = site_hit
                .split_once('@')
                .ok_or_else(|| ScheduleParseError(format!("missing '@' in '{entry}'")))?;
            let hit = hit
                .parse::<u64>()
                .map_err(|_| ScheduleParseError(format!("bad hit count in '{entry}'")))?;
            if hit == 0 {
                return Err(ScheduleParseError(format!(
                    "hit counts are 1-based, got 0 in '{entry}'"
                )));
            }
            plans.push(Plan {
                site: site.trim().to_owned(),
                hit,
                action: action.trim().parse()?,
            });
        }
        Ok(Schedule { plans })
    }

    /// Renders the schedule in the [`Schedule::parse`] syntax.
    pub fn render(&self) -> String {
        self.plans
            .iter()
            .map(Plan::to_string)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// A seed-driven schedule: `count` faults over `sites`, hit counts in
    /// `1..=max_hit`, actions drawn from {error, short write, abort}.
    /// Deterministic in `(seed, sites, count, max_hit)` — the basis of
    /// reproducible torture sweeps.
    pub fn seeded(seed: u64, sites: &[&str], count: usize, max_hit: u64) -> Self {
        if sites.is_empty() || max_hit == 0 {
            return Schedule::default();
        }
        let mut rng = SplitMix64::new(seed);
        let plans = (0..count)
            .map(|_| {
                let site = sites[(rng.next() % sites.len() as u64) as usize].to_owned();
                let hit = 1 + rng.next() % max_hit;
                let action = match rng.next() % 4 {
                    0 => FaultAction::Error,
                    // Short writes keep a pseudo-random prefix; 0 bytes
                    // (fully empty file) is a legal and nasty case.
                    1 => FaultAction::ShortWrite(rng.next() % 64),
                    _ => FaultAction::Abort,
                };
                Plan { site, hit, action }
            })
            .collect();
        Schedule { plans }
    }
}

/// A tiny deterministic generator (SplitMix64) so schedules need no
/// external RNG crate and never drift across toolchains.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Environment variable holding the process's fault schedule
/// ([`Schedule::parse`] syntax). Read by [`install_from_env`].
pub const SCHEDULE_ENV: &str = "RF_FAILPOINTS";

/// Environment variable naming a file to append one line per *fired*
/// fault (the recovery log's raw material). Read by [`install_from_env`].
pub const LOG_ENV: &str = "RF_FAULT_LOG";

/// `true` if this build compiled the failpoint machinery in.
#[inline]
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod armed {
    use super::{Fault, FaultAction, Schedule};
    use std::collections::HashMap;
    use std::io::Write;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// Fast-path gate: a site costs one relaxed load until a schedule is
    /// installed.
    static ARMED: AtomicBool = AtomicBool::new(false);

    struct Registry {
        schedule: Schedule,
        counters: HashMap<String, u64>,
        fired: Vec<String>,
        log_path: Option<PathBuf>,
    }

    static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

    pub fn install(schedule: Schedule, log_path: Option<PathBuf>) {
        let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        ARMED.store(!schedule.is_empty() || log_path.is_some(), Ordering::Release);
        *guard = Some(Registry {
            schedule,
            counters: HashMap::new(),
            fired: Vec::new(),
            log_path,
        });
    }

    pub fn clear() {
        let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        ARMED.store(false, Ordering::Release);
        *guard = None;
    }

    pub fn fired() -> Vec<String> {
        let guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        guard.as_ref().map(|r| r.fired.clone()).unwrap_or_default()
    }

    pub fn hit(site: &str) -> Fault {
        if !ARMED.load(Ordering::Acquire) {
            return Fault::None;
        }
        let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        let Some(registry) = guard.as_mut() else {
            return Fault::None;
        };
        let count = registry.counters.entry(site.to_owned()).or_insert(0);
        *count += 1;
        let now = *count;
        let Some(plan) = registry
            .schedule
            .plans()
            .iter()
            .find(|plan| plan.site == site && plan.hit == now)
        else {
            return Fault::None;
        };
        let action = plan.action;
        let line = format!("fired {site}@{now}={action}");
        registry.fired.push(line.clone());
        if let Some(path) = registry.log_path.clone() {
            // Append and flush *before* a scheduled abort so the log shows
            // exactly which injection killed the process.
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(file, "{line}");
                let _ = file.sync_all();
            }
        }
        drop(guard); // never abort while holding the registry lock
        match action {
            FaultAction::Error => Fault::Error,
            FaultAction::ShortWrite(keep) => Fault::ShortWrite(keep),
            FaultAction::Abort => std::process::abort(),
        }
    }
}

/// Installs `schedule` as this process's fault plan (replacing any previous
/// one and resetting all hit counters). No-op without the `enabled`
/// feature.
pub fn install(schedule: Schedule) {
    install_logged(schedule, None);
}

/// [`install`], plus an append-only log file receiving one line per fired
/// fault (flushed before any scheduled abort).
pub fn install_logged(schedule: Schedule, log_path: Option<std::path::PathBuf>) {
    #[cfg(feature = "enabled")]
    armed::install(schedule, log_path);
    #[cfg(not(feature = "enabled"))]
    let _ = (schedule, log_path);
}

/// Installs the schedule named by [`SCHEDULE_ENV`] / [`LOG_ENV`], if set.
/// Returns the installed schedule (empty when the variable is unset).
///
/// # Errors
///
/// Returns [`ScheduleParseError`] if the environment variable is set but
/// malformed — a torture harness typo should fail loudly, not silently
/// run a fault-free campaign.
pub fn install_from_env() -> Result<Schedule, ScheduleParseError> {
    let schedule = match std::env::var(SCHEDULE_ENV) {
        Ok(text) => Schedule::parse(&text)?,
        Err(_) => Schedule::default(),
    };
    let log_path = std::env::var(LOG_ENV).ok().map(std::path::PathBuf::from);
    install_logged(schedule.clone(), log_path);
    Ok(schedule)
}

/// Clears the installed schedule and counters.
pub fn clear() {
    #[cfg(feature = "enabled")]
    armed::clear();
}

/// Lines describing every fault fired so far (`fired site@hit=action`).
pub fn fired() -> Vec<String> {
    #[cfg(feature = "enabled")]
    {
        armed::fired()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Declares a hit of `site`. Returns the fault the caller must emulate;
/// scheduled aborts terminate the process inside this call.
///
/// Without the `enabled` feature this is a constant [`Fault::None`] the
/// optimizer removes entirely.
#[inline]
pub fn hit(site: &str) -> Fault {
    #[cfg(feature = "enabled")]
    {
        armed::hit(site)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = site;
        Fault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let schedule =
            Schedule::parse("a.b@3=abort; c.d@1=err;e@2=short:17").unwrap();
        assert_eq!(
            schedule.plans(),
            &[
                Plan {
                    site: "a.b".into(),
                    hit: 3,
                    action: FaultAction::Abort
                },
                Plan {
                    site: "c.d".into(),
                    hit: 1,
                    action: FaultAction::Error
                },
                Plan {
                    site: "e".into(),
                    hit: 2,
                    action: FaultAction::ShortWrite(17)
                },
            ]
        );
        let rendered = schedule.render();
        assert_eq!(Schedule::parse(&rendered).unwrap(), schedule);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Schedule::parse("no-at-sign=err").is_err());
        assert!(Schedule::parse("site@0=err").is_err());
        assert!(Schedule::parse("site@1=frobnicate").is_err());
        assert!(Schedule::parse("site@x=err").is_err());
        assert!(Schedule::parse("site@1=short:abc").is_err());
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let sites = ["x.write", "x.rename"];
        let one = Schedule::seeded(7, &sites, 5, 40);
        let two = Schedule::seeded(7, &sites, 5, 40);
        assert_eq!(one, two);
        assert_eq!(one.plans().len(), 5);
        assert!(one
            .plans()
            .iter()
            .all(|plan| plan.hit >= 1 && plan.hit <= 40));
        let other = Schedule::seeded(8, &sites, 5, 40);
        assert_ne!(one, other, "different seeds should differ");
    }

    #[test]
    fn disabled_builds_never_fire() {
        if compiled() {
            return; // this test covers the compiled-out personality only
        }
        install(Schedule::parse("x@1=err").unwrap());
        assert_eq!(hit("x"), Fault::None);
        clear();
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn nth_hit_fires_exactly_once() {
        install(Schedule::parse("s@2=err;t@1=short:3").unwrap());
        assert_eq!(hit("s"), Fault::None);
        assert_eq!(hit("t"), Fault::ShortWrite(3));
        assert_eq!(hit("s"), Fault::Error);
        assert_eq!(hit("s"), Fault::None);
        assert_eq!(hit("t"), Fault::None);
        assert_eq!(fired().len(), 2);
        clear();
        assert_eq!(hit("s"), Fault::None);
    }
}
