//! The memoised engine must report exactly the same *statement pairs* as
//! the naive full-history engine — the optimisation may only drop
//! duplicate pairs, never distinct ones.

use detector::{DetectorEngine, Policy};
use interp::{run_with, Limits, RandomScheduler};
use proptest::prelude::*;

fn render_program(threads: &[Vec<(u8, bool, bool)>]) -> String {
    use std::fmt::Write as _;
    let mut source = String::from("class Lock { }\nglobal lk;\nglobal g0 = 0;\nglobal g1 = 0;\n");
    for (t, ops) in threads.iter().enumerate() {
        let _ = writeln!(source, "proc worker{t}() {{\n    var tmp = 0;");
        for &(global, write, locked) in ops {
            let global = global % 2;
            let body = if write {
                format!("g{global} = tmp + 1;")
            } else {
                format!("tmp = g{global};")
            };
            if locked {
                let _ = writeln!(source, "    sync (lk) {{ {body} }}");
            } else {
                let _ = writeln!(source, "    {body}");
            }
        }
        source.push_str("}\n");
    }
    source.push_str("proc main() {\n    lk = new Lock;\n");
    for t in 0..threads.len() {
        use std::fmt::Write as _;
        let _ = writeln!(source, "    var t{t} = spawn worker{t}();");
    }
    for t in 0..threads.len() {
        use std::fmt::Write as _;
        let _ = writeln!(source, "    join t{t};");
    }
    source.push_str("}\n");
    source
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn memoised_and_naive_engines_agree(
        threads in proptest::collection::vec(
            proptest::collection::vec(
                (any::<u8>(), any::<bool>(), any::<bool>()),
                1..8,
            ),
            1..4,
        ),
        seed in 0u64..500,
    ) {
        let source = render_program(&threads);
        let program = cil::compile(&source).expect("generated source compiles");
        for policy in [Policy::Hybrid, Policy::HappensBefore, Policy::Lockset] {
            let mut memoised = DetectorEngine::new(policy);
            run_with(
                &program,
                "main",
                &mut RandomScheduler::seeded(seed),
                &mut memoised,
                Limits::default(),
            )
            .expect("run succeeds");
            let mut naive = DetectorEngine::new_unoptimized(policy);
            run_with(
                &program,
                "main",
                &mut RandomScheduler::seeded(seed),
                &mut naive,
                Limits::default(),
            )
            .expect("run succeeds");
            let memoised_races: Vec<_> = memoised.races().collect();
            let naive_races: Vec<_> = naive.races().collect();
            prop_assert_eq!(
                memoised_races,
                naive_races,
                "{:?} on:\n{}",
                policy,
                source
            );
        }
    }
}
