//! Candidate-pair symmetry regression tests.
//!
//! Phase 1 can *discover* a racing statement pair in either order — which
//! thread's access is stored first depends on the schedule, the seed, and
//! the engine implementation. If `(s1, s2)` and `(s2, s1)` ever surfaced as
//! distinct candidates, Phase 2 would fuzz the same pair twice (and the
//! campaign would double-count it). [`RacePair`] canonicalizes on
//! construction; these tests pin that contract at every boundary where an
//! order flip can happen.

use detector::{predict_races, DetectorEngine, DetectorImpl, EpochEngine, Policy, PredictConfig, RacePair};
use cil::flat::InstrId;
use interp::{Event, Loc, Observer, ObjId, ThreadId};

/// Two threads race through two distinct statements on the same global.
/// Depending on which thread the scheduler runs first, the engine sees the
/// accesses — and would naively report the pair — in opposite orders.
const OPPOSITE_ORDERS: &str = r#"
    global x = 0;
    proc writer() { @w x = 1; }
    proc main() {
        var t = spawn writer();
        @r var v = x;
        join t;
    }
"#;

#[test]
fn construction_order_cannot_split_a_pair() {
    let a = RacePair::new(InstrId(12), InstrId(7));
    let b = RacePair::new(InstrId(7), InstrId(12));
    assert_eq!(a, b);
    assert!(a.is_canonical() && b.is_canonical());
}

#[test]
fn both_discovery_orders_yield_the_same_candidate() {
    let program = cil::compile(OPPOSITE_ORDERS).unwrap();
    let expected = RacePair::new(program.tagged_access("w"), program.tagged_access("r"));

    // Feed both engines hand-rolled event streams with the two accesses in
    // either order: same single canonical candidate every time.
    let mem = |thread: u32, instr: InstrId| Event::Mem {
        thread: ThreadId(thread),
        instr,
        loc: Loc::Global(cil::flat::GlobalId(0)),
        is_write: true,
        locks: Vec::<ObjId>::new(),
    };
    let (w, r) = (program.tagged_access("w"), program.tagged_access("r"));
    for order in [[(0, w), (1, r)], [(0, r), (1, w)]] {
        let mut naive = DetectorEngine::new(Policy::Hybrid);
        let mut epoch = EpochEngine::new(Policy::Hybrid);
        for (thread, instr) in order {
            naive.on_event(&mem(thread, instr));
            epoch.on_event(&mem(thread, instr));
        }
        assert_eq!(naive.into_races(), vec![expected]);
        assert_eq!(epoch.into_races(), vec![expected]);
    }
}

#[test]
fn prediction_output_is_canonical_and_duplicate_free() {
    let program = cil::compile(OPPOSITE_ORDERS).unwrap();
    for detector in [DetectorImpl::Epoch, DetectorImpl::Naive] {
        // Many seeds: the racing accesses are observed in both orders
        // across these runs, and the union must still hold one candidate.
        let config = PredictConfig {
            detector,
            seeds: (1..=16).collect(),
            ..PredictConfig::default()
        };
        let races = predict_races(&program, "main", &config).unwrap();
        assert_eq!(races.len(), 1, "{detector:?}: exactly one candidate");
        assert!(races[0].is_canonical());
        assert_eq!(
            races[0],
            RacePair::new(program.tagged_access("w"), program.tagged_access("r"))
        );
    }
}

#[test]
fn self_pair_survives_canonicalization() {
    // Same statement racing with itself across threads must not be lost or
    // duplicated by the ordering rule.
    let source = r#"
        global c = 0;
        proc worker() { @inc c = c + 1; }
        proc main() {
            var a = spawn worker();
            var b = spawn worker();
            join a; join b;
        }
    "#;
    let program = cil::compile(source).unwrap();
    for detector in [DetectorImpl::Epoch, DetectorImpl::Naive] {
        let config = PredictConfig {
            detector,
            ..PredictConfig::default()
        };
        let races = predict_races(&program, "main", &config).unwrap();
        assert!(races.iter().all(RacePair::is_canonical), "{detector:?}");
        // No (a, b)/(b, a) twins anywhere in the output.
        for (i, left) in races.iter().enumerate() {
            for right in &races[i + 1..] {
                assert_ne!(
                    (left.first(), left.second()),
                    (right.second(), right.first()),
                    "{detector:?}: symmetric duplicate in {races:?}"
                );
            }
        }
    }
}
