//! Differential property test: the epoch-optimized engine is candidate-set
//! equivalent to the naive full-clock engine.
//!
//! The epoch engine's correctness argument (the FastTrack ownership lemma
//! plus signature-identical memoisation) is checked here mechanically: on
//! randomly generated concurrent programs, under every policy and many
//! schedules, `EpochEngine` and `DetectorEngine` must produce *identical*
//! racing-pair lists — not just equal sets modulo order, byte-identical
//! stable-order output.

use detector::{predict_races, DetectorEngine, DetectorImpl, EpochEngine, Policy, PredictConfig};
use interp::{run_with, Limits, RandomScheduler};
use proptest::prelude::*;

/// Generated workers mix locked/unlocked reads/writes of three globals
/// under two locks, so traces exercise empty, overlapping, and disjoint
/// locksets as well as fork/join ordering.
fn render_program(threads: &[Vec<(u8, bool, u8)>]) -> String {
    use std::fmt::Write as _;
    let mut source = String::from(
        "class Lock { }\nglobal lk0;\nglobal lk1;\nglobal g0 = 0;\nglobal g1 = 0;\nglobal g2 = 0;\n",
    );
    for (t, ops) in threads.iter().enumerate() {
        let _ = writeln!(source, "proc worker{t}() {{\n    var tmp = 0;");
        for &(global, write, locking) in ops {
            let global = global % 3;
            let body = if write {
                format!("g{global} = tmp + 1;")
            } else {
                format!("tmp = g{global};")
            };
            match locking % 4 {
                0 => {
                    let _ = writeln!(source, "    {body}");
                }
                1 => {
                    let _ = writeln!(source, "    sync (lk0) {{ {body} }}");
                }
                2 => {
                    let _ = writeln!(source, "    sync (lk1) {{ {body} }}");
                }
                _ => {
                    let _ = writeln!(source, "    sync (lk0) {{ sync (lk1) {{ {body} }} }}");
                }
            }
        }
        source.push_str("}\n");
    }
    source.push_str("proc main() {\n    lk0 = new Lock;\n    lk1 = new Lock;\n");
    for t in 0..threads.len() {
        let _ = writeln!(source, "    var t{t} = spawn worker{t}();");
    }
    for t in 0..threads.len() {
        let _ = writeln!(source, "    join t{t};");
    }
    source.push_str("}\n");
    source
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn epoch_and_naive_engines_agree_on_random_programs(
        threads in proptest::collection::vec(
            proptest::collection::vec(
                (any::<u8>(), any::<bool>(), any::<u8>()),
                1..8,
            ),
            1..4,
        ),
        seed in 0u64..500,
    ) {
        let source = render_program(&threads);
        let program = cil::compile(&source).expect("generated source compiles");
        for policy in [Policy::Hybrid, Policy::HappensBefore, Policy::Lockset] {
            let mut naive = DetectorEngine::new(policy);
            run_with(
                &program,
                "main",
                &mut RandomScheduler::seeded(seed),
                &mut naive,
                Limits::default(),
            )
            .expect("run succeeds");
            let mut epoch = EpochEngine::new(policy);
            run_with(
                &program,
                "main",
                &mut RandomScheduler::seeded(seed),
                &mut epoch,
                Limits::default(),
            )
            .expect("run succeeds");
            let naive_races: Vec<_> = naive.races().collect();
            let epoch_races: Vec<_> = epoch.races().collect();
            prop_assert_eq!(
                epoch_races,
                naive_races,
                "{:?} diverged on:\n{}",
                policy,
                source
            );
        }
    }

    #[test]
    fn predict_races_is_detector_impl_independent(
        threads in proptest::collection::vec(
            proptest::collection::vec(
                (any::<u8>(), any::<bool>(), any::<u8>()),
                1..6,
            ),
            1..3,
        ),
    ) {
        let source = render_program(&threads);
        let program = cil::compile(&source).expect("generated source compiles");
        for policy in [Policy::Hybrid, Policy::HappensBefore, Policy::Lockset] {
            let predict = |detector| {
                predict_races(&program, "main", &PredictConfig {
                    policy,
                    detector,
                    ..PredictConfig::default()
                })
                .expect("prediction runs")
            };
            prop_assert_eq!(
                predict(DetectorImpl::Epoch),
                predict(DetectorImpl::Naive),
                "{:?} diverged on:\n{}",
                policy,
                source
            );
        }
    }
}
