//! Cross-policy comparisons: the three detectors ordered by predictive
//! power, on programs that separate them (the paper's §1/§6 positioning).
//!
//! * **Lockset (Eraser)** — most predictive, noisiest: flags fork/join- and
//!   handshake-ordered accesses too.
//! * **Hybrid** — lockset + start/join/notify–wait happens-before edges:
//!   the paper's Phase 1 sweet spot.
//! * **Happens-before** (with lock edges) — precise for the observed run,
//!   cannot predict; misses races hidden by accidental lock ordering.

use detector::{predict_races, Policy, PredictConfig};

fn predict(source: &str, policy: Policy) -> usize {
    let program = cil::compile(source).expect("test source compiles");
    let config = PredictConfig {
        policy,
        ..PredictConfig::with_runs(10)
    };
    predict_races(&program, "main", &config)
        .expect("prediction runs")
        .len()
}

#[test]
fn fork_ordered_writes_separate_eraser_from_hybrid() {
    // Parent writes x, then spawns a child that writes x: ordered by the
    // spawn edge. Hybrid is silent; Eraser (no happens-before at all)
    // flags it.
    let source = r#"
        global x = 0;
        proc child() { x = 2; }
        proc main() {
            x = 1;
            var t = spawn child();
            join t;
        }
    "#;
    assert_eq!(predict(source, Policy::Hybrid), 0);
    assert_eq!(predict(source, Policy::HappensBefore), 0);
    assert!(predict(source, Policy::Lockset) >= 1, "Eraser false positive");
}

#[test]
fn lock_ordering_separates_hybrid_from_happens_before() {
    // Two threads write `x` under *different* locks, but both also touch a
    // common lock between the accesses. In any observed execution the
    // common lock's release→acquire edge orders the writes, so the pure
    // happens-before detector stays silent in most runs — while hybrid
    // (which deliberately ignores lock edges) predicts the race every time.
    let source = r#"
        class Lock { }
        global common;
        global x = 0;
        proc worker(v) {
            sync (common) { nop; }
            x = v;
            sync (common) { nop; }
        }
        proc main() {
            common = new Lock;
            var a = spawn worker(1);
            var b = spawn worker(2);
            join a;
            join b;
        }
    "#;
    let hybrid = predict(source, Policy::Hybrid);
    assert!(hybrid >= 1, "hybrid predicts the x race");
    // Pure HB detection depends on the observed interleaving; across the
    // same runs it can only report a subset of hybrid's pairs.
    let hb = predict(source, Policy::HappensBefore);
    assert!(hb <= hybrid, "HB ⊆ hybrid on this program: {hb} vs {hybrid}");
}

#[test]
fn figure1_policy_ordering() {
    // On the paper's Figure 1, hybrid finds the z race and the x false
    // alarm; Eraser finds at least as much; HB finds at most as much.
    let program = workload_figure1();
    let count = |policy| {
        let config = PredictConfig {
            policy,
            ..PredictConfig::with_runs(20)
        };
        predict_races(&program, "main", &config).unwrap().len()
    };
    let lockset = count(Policy::Lockset);
    let hybrid = count(Policy::Hybrid);
    let hb = count(Policy::HappensBefore);
    assert!(lockset >= hybrid, "{lockset} >= {hybrid}");
    assert!(hybrid >= hb, "{hybrid} >= {hb}");
    assert_eq!(hybrid, 2, "z pair + x false alarm");
}

fn workload_figure1() -> cil::Program {
    cil::compile(
        r#"
        class Lock { }
        global l;
        global x = 0;
        global y = 0;
        global z = 0;
        proc thread1() {
            x = 1;
            sync (l) { y = 1; }
            var t = z;
            if (t == 1) { throw Error1; }
        }
        proc thread2() {
            z = 1;
            sync (l) {
                var t = y;
                if (t == 1) {
                    var u = x;
                    if (u != 1) { throw Error2; }
                }
            }
        }
        proc main() {
            l = new Lock;
            var t1 = spawn thread1();
            var t2 = spawn thread2();
            join t1;
            join t2;
        }
        "#,
    )
    .unwrap()
}

#[test]
fn notify_wait_edge_suppresses_hybrid_but_not_eraser() {
    let source = r#"
        class Lock { }
        global l;
        global ready = false;
        global payload = 0;
        proc consumer() {
            sync (l) {
                while (!ready) { wait l; }
            }
            var v = payload;    // ordered by the notify edge
        }
        proc main() {
            l = new Lock;
            var t = spawn consumer();
            payload = 42;
            sync (l) { ready = true; notify l; }
            join t;
        }
    "#;
    // Hybrid tracks the notify→wait SND/RCV edge: when the consumer goes
    // through an actual wait, the payload accesses are ordered. (In runs
    // where the consumer never waits — flag already true — the lock
    // release→acquire ordering is invisible to hybrid, so it may still
    // report the pair; Eraser always does.)
    let hybrid = predict(source, Policy::Hybrid);
    let lockset = predict(source, Policy::Lockset);
    assert!(lockset >= 1);
    assert!(hybrid <= lockset);
}
