//! Potential atomicity-violation prediction.
//!
//! The paper's §1 lists "potential atomicity violations" as another source
//! of problematic-statement sets for the biased scheduler. This module
//! predicts the classic **split-region** pattern: one thread accesses the
//! same location twice in *different* critical sections of the same lock
//! (e.g. a check in one `sync` block and an act in the next — the
//! programmer intended them to be atomic), while another thread has a
//! conflicting access to that location. Interleaving the remote access
//! between the two halves is serialisable-looking to a race detector
//! (every access is locked — there is **no data race**) but breaks the
//! intended atomicity.
//!
//! Each [`AtomicityCandidate`] carries the three statements; the active
//! scheduler (`racefuzzer::fuzz_atomicity`) then tries to schedule the
//! remote access into the window.

use cil::flat::InstrId;
use interp::{
    run_with, Event, Limits, ObjId, Observer, RandomScheduler, RoundRobinScheduler, SetupError,
    ThreadId,
};
use std::collections::{BTreeSet, HashMap};

/// A predicted atomicity violation: `first` and `second` are executed by
/// one thread in different critical sections of a common lock and touch
/// the same location; `remote` is a conflicting access by another thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AtomicityCandidate {
    /// First half of the intended-atomic region.
    pub first: InstrId,
    /// Second half.
    pub second: InstrId,
    /// The conflicting access to interleave between them.
    pub remote: InstrId,
}

impl AtomicityCandidate {
    /// Human-readable description with source positions.
    pub fn describe(&self, program: &cil::Program) -> String {
        format!(
            "region [{} … {}] vs remote {}",
            cil::pretty::describe_instr(program, self.first),
            cil::pretty::describe_instr(program, self.second),
            cil::pretty::describe_instr(program, self.remote)
        )
    }
}

/// One observed access, annotated with the critical-section generation of
/// each lock held at the time.
#[derive(Clone, Debug)]
struct SectionAccess {
    instr: InstrId,
    loc: interp::Loc,
    is_write: bool,
    /// lock → index of the critical section (nth acquisition by this
    /// thread) during which the access happened.
    sections: HashMap<ObjId, u64>,
}

/// Observer that segments each thread's accesses by critical section and
/// derives split-region candidates.
#[derive(Clone, Debug, Default)]
pub struct AtomicityObserver {
    /// Per thread: acquisition counters per lock.
    acquisitions: HashMap<ThreadId, HashMap<ObjId, u64>>,
    /// Per thread: locks currently held.
    held: HashMap<ThreadId, BTreeSet<ObjId>>,
    /// Per thread: access log.
    accesses: HashMap<ThreadId, Vec<SectionAccess>>,
}

impl AtomicityObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Derives the split-region candidates observed in this run.
    pub fn candidates(&self) -> Vec<AtomicityCandidate> {
        let mut found: BTreeSet<AtomicityCandidate> = BTreeSet::new();
        for (&thread, log) in &self.accesses {
            for (index, first) in log.iter().enumerate() {
                for second in &log[index + 1..] {
                    if second.loc != first.loc || second.instr == first.instr {
                        continue;
                    }
                    // Same lock held at both, but in *different* critical
                    // sections — the split region.
                    let split_lock = first.sections.iter().find(|(lock, generation)| {
                        second
                            .sections
                            .get(lock)
                            .is_some_and(|other| other != *generation)
                    });
                    let Some((&lock, _)) = split_lock else {
                        continue;
                    };
                    // A conflicting remote access under the same lock.
                    for (&other, remote_log) in &self.accesses {
                        if other == thread {
                            continue;
                        }
                        for remote in remote_log {
                            if remote.loc == first.loc
                                && remote.sections.contains_key(&lock)
                                && (remote.is_write || first.is_write || second.is_write)
                            {
                                found.insert(AtomicityCandidate {
                                    first: first.instr,
                                    second: second.instr,
                                    remote: remote.instr,
                                });
                            }
                        }
                    }
                }
            }
        }
        found.into_iter().collect()
    }
}

impl Observer for AtomicityObserver {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::Acquire { thread, obj, .. } => {
                *self
                    .acquisitions
                    .entry(*thread)
                    .or_default()
                    .entry(*obj)
                    .or_insert(0) += 1;
                self.held.entry(*thread).or_default().insert(*obj);
            }
            Event::Release { thread, obj, .. } => {
                if let Some(held) = self.held.get_mut(thread) {
                    held.remove(obj);
                }
            }
            Event::Mem {
                thread,
                instr,
                loc,
                is_write,
                ..
            } => {
                let counters = self.acquisitions.entry(*thread).or_default();
                let sections: HashMap<ObjId, u64> = self
                    .held
                    .get(thread)
                    .map(|held| {
                        held.iter()
                            .map(|lock| (*lock, counters.get(lock).copied().unwrap_or(0)))
                            .collect()
                    })
                    .unwrap_or_default();
                self.accesses.entry(*thread).or_default().push(SectionAccess {
                    instr: *instr,
                    loc: *loc,
                    is_write: *is_write,
                    sections,
                });
            }
            _ => {}
        }
    }
}

/// Runs the program under a few schedules and returns the union of
/// predicted split-region atomicity violations.
///
/// # Errors
///
/// Returns [`SetupError`] if `entry` does not name a zero-argument
/// procedure.
pub fn predict_atomicity_violations(
    program: &cil::Program,
    entry: &str,
    observation_runs: u64,
) -> Result<Vec<AtomicityCandidate>, SetupError> {
    let mut all: BTreeSet<AtomicityCandidate> = BTreeSet::new();

    let mut observer = AtomicityObserver::new();
    run_with(
        program,
        entry,
        &mut RoundRobinScheduler::new(7),
        &mut observer,
        Limits::default(),
    )?;
    all.extend(observer.candidates());

    for seed in 1..=observation_runs {
        let mut observer = AtomicityObserver::new();
        run_with(
            program,
            entry,
            &mut RandomScheduler::seeded(seed),
            &mut observer,
            Limits::default(),
        )?;
        all.extend(observer.candidates());
    }

    Ok(all.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil::flat::GlobalId;
    use interp::Loc;

    fn acquire(thread: u32, obj: u32) -> Event {
        Event::Acquire {
            thread: ThreadId(thread),
            obj: ObjId(obj),
            instr: InstrId(0),
        }
    }

    fn release(thread: u32, obj: u32) -> Event {
        Event::Release {
            thread: ThreadId(thread),
            obj: ObjId(obj),
            instr: InstrId(0),
        }
    }

    fn mem(thread: u32, instr: u32, is_write: bool) -> Event {
        Event::Mem {
            thread: ThreadId(thread),
            instr: InstrId(instr),
            loc: Loc::Global(GlobalId(0)),
            is_write,
            locks: vec![],
        }
    }

    #[test]
    fn split_region_with_remote_writer_is_a_candidate() {
        let mut observer = AtomicityObserver::new();
        // t0: CS1 { read } CS2 { write }; t1: CS { write }.
        for event in [
            acquire(0, 5),
            mem(0, 10, false),
            release(0, 5),
            acquire(0, 5),
            mem(0, 11, true),
            release(0, 5),
            acquire(1, 5),
            mem(1, 20, true),
            release(1, 5),
        ] {
            observer.on_event(&event);
        }
        let candidates = observer.candidates();
        assert_eq!(
            candidates,
            vec![AtomicityCandidate {
                first: InstrId(10),
                second: InstrId(11),
                remote: InstrId(20),
            }]
        );
    }

    #[test]
    fn single_critical_section_is_not_split() {
        let mut observer = AtomicityObserver::new();
        for event in [
            acquire(0, 5),
            mem(0, 10, false),
            mem(0, 11, true),
            release(0, 5),
            acquire(1, 5),
            mem(1, 20, true),
            release(1, 5),
        ] {
            observer.on_event(&event);
        }
        assert!(observer.candidates().is_empty());
    }

    #[test]
    fn read_only_triples_are_not_candidates() {
        let mut observer = AtomicityObserver::new();
        for event in [
            acquire(0, 5),
            mem(0, 10, false),
            release(0, 5),
            acquire(0, 5),
            mem(0, 11, false),
            release(0, 5),
            acquire(1, 5),
            mem(1, 20, false),
            release(1, 5),
        ] {
            observer.on_event(&event);
        }
        assert!(observer.candidates().is_empty(), "no write anywhere");
    }

    #[test]
    fn remote_under_different_lock_is_ignored() {
        let mut observer = AtomicityObserver::new();
        for event in [
            acquire(0, 5),
            mem(0, 10, false),
            release(0, 5),
            acquire(0, 5),
            mem(0, 11, true),
            release(0, 5),
            acquire(1, 6),
            mem(1, 20, true),
            release(1, 6),
        ] {
            observer.on_event(&event);
        }
        // That situation is a *data race* candidate (disjoint locks), not
        // an atomicity candidate.
        assert!(observer.candidates().is_empty());
    }
}
