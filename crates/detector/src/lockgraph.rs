//! Potential-deadlock prediction via the lock-order graph.
//!
//! The paper notes (§1) that the race-directed scheduler generalises to any
//! concurrency problem for which an analysis can supply the set of
//! problematic statements — naming potential deadlocks explicitly. This
//! module supplies that analysis, in the style of the GoodLock algorithm
//! family: observe one (or a few) executions, record every *nested* lock
//! acquisition as an edge `outer → inner` annotated with the acquiring
//! thread, the acquisition statements, and the **gate locks** held at the
//! time; report cycles whose edges come from distinct threads and share no
//! gate lock. Each reported [`DeadlockCandidate`] carries the *inner*
//! acquisition statements — exactly the statement set to hand to the
//! active scheduler (`racefuzzer::hunt_deadlocks`) for confirmation.

use cil::flat::InstrId;
use interp::{
    run_with, Event, Limits, ObjId, Observer, RandomScheduler, RoundRobinScheduler, SetupError,
    ThreadId,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One observed nested acquisition: thread `thread` acquired `inner_lock`
/// at `inner_site` while holding `outer_lock` (acquired at `outer_site`),
/// with `gates` also held.
#[derive(Clone, Debug, PartialEq, Eq)]
struct LockEdge {
    thread: ThreadId,
    outer_lock: ObjId,
    inner_lock: ObjId,
    outer_site: InstrId,
    inner_site: InstrId,
    gates: BTreeSet<ObjId>,
}

/// A predicted deadlock: a cycle of nested acquisitions by distinct
/// threads with no common gate lock.
///
/// `inner_sites` — the statements acquiring each cycle edge's inner lock —
/// is the set to bias the active scheduler with.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DeadlockCandidate {
    /// `(outer_site, inner_site)` per cycle edge, in cycle order.
    pub edges: Vec<(InstrId, InstrId)>,
}

impl DeadlockCandidate {
    /// The statements at which the active scheduler should postpone
    /// threads: each edge's inner acquisition.
    pub fn inner_sites(&self) -> BTreeSet<InstrId> {
        self.edges.iter().map(|&(_, inner)| inner).collect()
    }

    /// Cycle length (2 = classic AB/BA inversion).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the candidate has no edges (never produced by detection).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Human-readable description with source positions.
    pub fn describe(&self, program: &cil::Program) -> String {
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|&(outer, inner)| {
                format!(
                    "[hold {} then take {}]",
                    cil::pretty::describe_instr(program, outer),
                    cil::pretty::describe_instr(program, inner)
                )
            })
            .collect();
        edges.join(" ∧ ")
    }
}

/// Observer that builds the lock-order graph of one execution.
#[derive(Clone, Debug, Default)]
pub struct LockGraph {
    /// Per-thread stack of currently held locks with acquisition sites.
    held: HashMap<ThreadId, Vec<(ObjId, InstrId)>>,
    edges: Vec<LockEdge>,
}

impl LockGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nested-acquisition edges observed.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finds cycles up to `max_len` edges whose edges are from pairwise
    /// distinct threads, on pairwise distinct locks, with no lock common to
    /// all gate sets — the GoodLock validity conditions.
    pub fn candidates(&self, max_len: usize) -> Vec<DeadlockCandidate> {
        // Adjacency by outer lock.
        let mut by_outer: BTreeMap<ObjId, Vec<&LockEdge>> = BTreeMap::new();
        for edge in &self.edges {
            by_outer.entry(edge.outer_lock).or_default().push(edge);
        }

        let mut found: BTreeSet<DeadlockCandidate> = BTreeSet::new();
        // DFS over lock nodes for simple cycles of length 2..=max_len.
        for start in &self.edges {
            let mut path = vec![start];
            self.extend_cycle(start, &mut path, max_len, &by_outer, &mut found);
        }
        found.into_iter().collect()
    }

    fn extend_cycle<'g>(
        &'g self,
        start: &'g LockEdge,
        path: &mut Vec<&'g LockEdge>,
        max_len: usize,
        by_outer: &BTreeMap<ObjId, Vec<&'g LockEdge>>,
        found: &mut BTreeSet<DeadlockCandidate>,
    ) {
        let last = path.last().expect("path is never empty");
        if path.len() >= 2 && last.inner_lock == start.outer_lock {
            if Self::valid_cycle(path) {
                // Canonicalise: rotate so the smallest inner site is first.
                let mut edges: Vec<(InstrId, InstrId)> = path
                    .iter()
                    .map(|edge| (edge.outer_site, edge.inner_site))
                    .collect();
                let pivot = edges
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, edge)| *edge)
                    .map(|(index, _)| index)
                    .expect("cycle has edges");
                edges.rotate_left(pivot);
                found.insert(DeadlockCandidate { edges });
            }
            return;
        }
        if path.len() >= max_len {
            return;
        }
        if let Some(nexts) = by_outer.get(&last.inner_lock) {
            for next in nexts {
                // Simple cycles only: no repeated locks or threads.
                let repeats = path.iter().any(|edge| {
                    edge.thread == next.thread
                        || edge.outer_lock == next.outer_lock
                        || edge.inner_lock == next.inner_lock && next.inner_lock != start.outer_lock
                });
                if repeats {
                    continue;
                }
                path.push(next);
                self.extend_cycle(start, path, max_len, by_outer, found);
                path.pop();
            }
        }
    }

    /// GoodLock validity: distinct threads per edge and no gate lock common
    /// to every edge (a common gate serialises the cycle).
    fn valid_cycle(path: &[&LockEdge]) -> bool {
        for (index, a) in path.iter().enumerate() {
            for b in &path[index + 1..] {
                if a.thread == b.thread {
                    return false;
                }
                if a.gates.intersection(&b.gates).next().is_some() {
                    return false;
                }
            }
        }
        true
    }
}

impl Observer for LockGraph {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::Acquire { thread, obj, instr } => {
                let stack = self.held.entry(*thread).or_default();
                for (index, &(outer, outer_site)) in stack.iter().enumerate() {
                    let gates: BTreeSet<ObjId> = stack[..index]
                        .iter()
                        .chain(&stack[index + 1..])
                        .map(|&(lock, _)| lock)
                        .collect();
                    let edge = LockEdge {
                        thread: *thread,
                        outer_lock: outer,
                        inner_lock: *obj,
                        outer_site,
                        inner_site: *instr,
                        gates,
                    };
                    if !self.edges.contains(&edge) {
                        self.edges.push(edge);
                    }
                }
                stack.push((*obj, *instr));
            }
            Event::Release { thread, obj, .. } => {
                if let Some(stack) = self.held.get_mut(thread) {
                    if let Some(index) = stack.iter().rposition(|&(lock, _)| lock == *obj) {
                        stack.remove(index);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Runs the program under a few schedules and returns the union of
/// predicted deadlock cycles (up to length `max_cycle`).
///
/// # Errors
///
/// Returns [`SetupError`] if `entry` does not name a zero-argument
/// procedure.
pub fn predict_deadlocks(
    program: &cil::Program,
    entry: &str,
    observation_runs: u64,
    max_cycle: usize,
) -> Result<Vec<DeadlockCandidate>, SetupError> {
    let mut all: BTreeSet<DeadlockCandidate> = BTreeSet::new();

    let mut graph = LockGraph::new();
    run_with(
        program,
        entry,
        &mut RoundRobinScheduler::new(7),
        &mut graph,
        Limits::default(),
    )?;
    all.extend(graph.candidates(max_cycle));

    for seed in 1..=observation_runs {
        let mut graph = LockGraph::new();
        run_with(
            program,
            entry,
            &mut RandomScheduler::seeded(seed),
            &mut graph,
            Limits::default(),
        )?;
        all.extend(graph.candidates(max_cycle));
    }

    Ok(all.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acquire(thread: u32, obj: u32, instr: u32) -> Event {
        Event::Acquire {
            thread: ThreadId(thread),
            obj: ObjId(obj),
            instr: InstrId(instr),
        }
    }

    fn release(thread: u32, obj: u32) -> Event {
        Event::Release {
            thread: ThreadId(thread),
            obj: ObjId(obj),
            instr: InstrId(0),
        }
    }

    #[test]
    fn two_cycle_is_detected() {
        let mut graph = LockGraph::new();
        // t0: lock A(1) then B(2); t1: lock B(3) then A(4).
        for event in [
            acquire(0, 10, 1),
            acquire(0, 11, 2),
            release(0, 11),
            release(0, 10),
            acquire(1, 11, 3),
            acquire(1, 10, 4),
            release(1, 10),
            release(1, 11),
        ] {
            graph.on_event(&event);
        }
        let candidates = graph.candidates(2);
        assert_eq!(candidates.len(), 1, "{candidates:?}");
        assert_eq!(
            candidates[0].inner_sites(),
            [InstrId(2), InstrId(4)].into_iter().collect()
        );
    }

    #[test]
    fn same_thread_nesting_is_not_a_cycle() {
        let mut graph = LockGraph::new();
        for event in [
            acquire(0, 10, 1),
            acquire(0, 11, 2),
            release(0, 11),
            release(0, 10),
            acquire(0, 11, 3),
            acquire(0, 10, 4),
            release(0, 10),
            release(0, 11),
        ] {
            graph.on_event(&event);
        }
        assert!(graph.candidates(2).is_empty());
    }

    #[test]
    fn common_gate_lock_suppresses_the_cycle() {
        let mut graph = LockGraph::new();
        // Both inversions occur while holding gate lock G(99).
        for event in [
            acquire(0, 99, 0),
            acquire(0, 10, 1),
            acquire(0, 11, 2),
            release(0, 11),
            release(0, 10),
            release(0, 99),
            acquire(1, 99, 0),
            acquire(1, 11, 3),
            acquire(1, 10, 4),
            release(1, 10),
            release(1, 11),
            release(1, 99),
        ] {
            graph.on_event(&event);
        }
        // Edges 10→11 and 11→10 both have gate {99}: serialised, no report.
        let candidates = graph.candidates(2);
        assert!(
            candidates.is_empty(),
            "gate-protected inversion is safe: {candidates:?}"
        );
    }

    #[test]
    fn three_cycle_is_detected_with_max_len_three() {
        let mut graph = LockGraph::new();
        // t0: A→B, t1: B→C, t2: C→A.
        for event in [
            acquire(0, 10, 1),
            acquire(0, 11, 2),
            release(0, 11),
            release(0, 10),
            acquire(1, 11, 3),
            acquire(1, 12, 4),
            release(1, 12),
            release(1, 11),
            acquire(2, 12, 5),
            acquire(2, 10, 6),
            release(2, 10),
            release(2, 12),
        ] {
            graph.on_event(&event);
        }
        assert!(graph.candidates(2).is_empty(), "no 2-cycle exists");
        let candidates = graph.candidates(3);
        assert_eq!(candidates.len(), 1, "{candidates:?}");
        assert_eq!(candidates[0].len(), 3);
    }

    #[test]
    fn reentrant_acquire_does_not_self_edge() {
        let mut graph = LockGraph::new();
        // Outermost acquires only reach the observer (the interpreter
        // filters re-entries), but even A-under-A from different sites
        // must not self-edge… simulate nested distinct locks only.
        graph.on_event(&acquire(0, 10, 1));
        graph.on_event(&release(0, 10));
        assert_eq!(graph.edge_count(), 0);
    }
}
