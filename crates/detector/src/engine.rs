//! The shared detection engine behind the three detectors.
//!
//! All three classic dynamic detectors share the same skeleton — observe
//! `MEM` events, keep per-location access histories, and flag conflicting
//! access pairs — and differ only in the *predicate* applied to a pair:
//!
//! | policy                    | lockset check | happens-before check        |
//! |---------------------------|---------------|-----------------------------|
//! | [`Policy::Hybrid`]        | disjoint      | program order + `SND`/`RCV` |
//! | [`Policy::HappensBefore`] | —             | …plus lock release→acquire  |
//! | [`Policy::Lockset`]       | disjoint      | —                           |
//!
//! `Hybrid` is the paper's Phase 1 (O'Callahan & Choi): *predictive* because
//! it deliberately ignores the accidental ordering imposed by lock
//! acquisition order in the observed run. `HappensBefore` is the precise
//! but non-predictive baseline (§1's third comparison point). `Lockset` is
//! Eraser: most predictive, most false positives.

use crate::report::RacePair;
use cil::flat::InstrId;
use interp::{Event, Loc, MsgId, Observer, ObjId, ThreadId};
use std::collections::{BTreeSet, HashMap};
use vclock::VectorClock;

/// Which race predicate the engine applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Locksets + happens-before over thread start/join/notify–wait edges
    /// (the paper's Phase 1).
    Hybrid,
    /// Pure happens-before, including lock release→acquire edges: precise,
    /// detects only races that (nearly) happened in this execution.
    HappensBefore,
    /// Locksets only (Eraser-style): maximally predictive, noisiest.
    Lockset,
}

/// One remembered access to a location.
#[derive(Clone, Debug)]
struct Stored {
    thread: ThreadId,
    instr: InstrId,
    is_write: bool,
    locks: Vec<ObjId>,
    clock: VectorClock,
}

/// A race-detection engine parameterised by [`Policy`].
///
/// Feed it events by using it as an [`Observer`] during a run, then collect
/// [`RacePair`]s with [`DetectorEngine::races`].
#[derive(Clone, Debug)]
pub struct DetectorEngine {
    policy: Policy,
    memoise: bool,
    clocks: Vec<VectorClock>,
    msg_clocks: HashMap<MsgId, VectorClock>,
    release_clocks: HashMap<ObjId, VectorClock>,
    histories: HashMap<Loc, Vec<Stored>>,
    races: BTreeSet<RacePair>,
    events_seen: u64,
}

impl DetectorEngine {
    /// Creates an engine with the given policy.
    pub fn new(policy: Policy) -> Self {
        DetectorEngine {
            policy,
            memoise: true,
            clocks: Vec::new(),
            msg_clocks: HashMap::new(),
            release_clocks: HashMap::new(),
            histories: HashMap::new(),
            races: BTreeSet::new(),
            events_seen: 0,
        }
    }

    /// Creates an engine that keeps the **full** access history per
    /// location instead of memoising by `(thread, statement, lockset)`
    /// signature — the naive O(n²) formulation. The paper notes its own
    /// hybrid implementation was "not an optimized one" and timed out on
    /// the compute kernels (Table 1's `> 3600` cells); this mode exists to
    /// reproduce that blow-up in the overhead benchmark.
    pub fn new_unoptimized(policy: Policy) -> Self {
        DetectorEngine {
            memoise: false,
            ..Self::new(policy)
        }
    }

    /// The policy this engine applies.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Number of events processed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// The distinct racing statement pairs found so far, in stable order.
    pub fn races(&self) -> impl Iterator<Item = RacePair> + '_ {
        self.races.iter().copied()
    }

    /// Consumes the engine, returning the racing pairs.
    pub fn into_races(self) -> Vec<RacePair> {
        self.races.into_iter().collect()
    }

    /// Number of distinct racing pairs.
    pub fn race_count(&self) -> usize {
        self.races.len()
    }

    fn clock_mut(&mut self, thread: ThreadId) -> &mut VectorClock {
        if thread.index() >= self.clocks.len() {
            self.clocks.resize(thread.index() + 1, VectorClock::new());
        }
        &mut self.clocks[thread.index()]
    }

    fn tick(&mut self, thread: ThreadId) {
        let index = thread.index();
        self.clock_mut(thread).tick(index);
    }

    fn uses_lock_edges(&self) -> bool {
        self.policy == Policy::HappensBefore
    }

    fn on_mem(
        &mut self,
        thread: ThreadId,
        instr: InstrId,
        loc: Loc,
        is_write: bool,
        locks: Vec<ObjId>,
    ) {
        self.tick(thread);
        let new = Stored {
            thread,
            instr,
            is_write,
            locks,
            clock: self.clocks[thread.index()].clone(),
        };
        let policy = self.policy;
        let history = self.histories.entry(loc).or_default();
        let mut found_races = Vec::new();
        for old in history.iter() {
            if old.thread != thread
                && (old.is_write || new.is_write)
                && race_predicate(policy, old, &new)
            {
                found_races.push(RacePair::new(old.instr, new.instr));
            }
        }
        // Memoise: keep only the first access per (thread, stmt, write-kind,
        // lockset) signature. This bounds history size in loops; it is the
        // standard trimming optimisation and can only lose duplicate
        // *statement pairs*, which the report deduplicates anyway.
        let duplicate = self.memoise
            && history.iter().any(|old| {
                old.thread == new.thread
                    && old.instr == new.instr
                    && old.is_write == new.is_write
                    && old.locks == new.locks
            });
        if !duplicate {
            history.push(new);
        }
        self.races.extend(found_races);
    }
}

/// The per-policy race predicate over a stored and a new access (distinct
/// threads and read/write conflict already established by the caller).
fn race_predicate(policy: Policy, old: &Stored, new: &Stored) -> bool {
    debug_assert_ne!(old.thread, new.thread);
    match policy {
        Policy::Hybrid => disjoint(&old.locks, &new.locks) && old.clock.concurrent(&new.clock),
        Policy::HappensBefore => old.clock.concurrent(&new.clock),
        Policy::Lockset => disjoint(&old.locks, &new.locks),
    }
}

/// Common-lock check as a single merge scan over the two sorted locksets
/// (O(|a| + |b|), not the nested-loop O(|a| · |b|)). Both sides are sorted:
/// `ThreadState::lockset` sorts before emitting the `MEM` event, and the
/// epoch engine interns those same slices. Shared by both Phase-1 engines.
pub(crate) fn disjoint(a: &[ObjId], b: &[ObjId]) -> bool {
    let mut ia = 0;
    let mut ib = 0;
    while ia < a.len() && ib < b.len() {
        match a[ia].cmp(&b[ib]) {
            std::cmp::Ordering::Less => ia += 1,
            std::cmp::Ordering::Greater => ib += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

impl Observer for DetectorEngine {
    fn on_event(&mut self, event: &Event) {
        self.events_seen += 1;
        match event {
            Event::Mem {
                thread,
                instr,
                loc,
                is_write,
                locks,
            } => self.on_mem(*thread, *instr, *loc, *is_write, locks.clone()),
            Event::Send { msg, thread } => {
                self.tick(*thread);
                let snapshot = self.clock_mut(*thread).clone();
                self.msg_clocks.insert(*msg, snapshot);
            }
            Event::Recv { msg, thread } => {
                if let Some(snapshot) = self.msg_clocks.get(msg).cloned() {
                    self.clock_mut(*thread).join(&snapshot);
                }
                self.tick(*thread);
            }
            Event::Acquire { thread, obj, .. } => {
                if self.uses_lock_edges() {
                    if let Some(snapshot) = self.release_clocks.get(obj).cloned() {
                        self.clock_mut(*thread).join(&snapshot);
                    }
                    self.tick(*thread);
                }
            }
            Event::Release { thread, obj, .. } => {
                if self.uses_lock_edges() {
                    self.tick(*thread);
                    let snapshot = self.clock_mut(*thread).clone();
                    self.release_clocks.insert(*obj, snapshot);
                }
            }
            Event::ThreadSpawned { .. }
            | Event::ThreadExited { .. }
            | Event::ExceptionThrown { .. }
            | Event::ExceptionCaught { .. }
            | Event::Allocated { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil::flat::GlobalId;

    fn mem(thread: u32, instr: u32, loc: Loc, is_write: bool, locks: &[u32]) -> Event {
        Event::Mem {
            thread: ThreadId(thread),
            instr: InstrId(instr),
            loc,
            is_write,
            locks: locks.iter().map(|&lock| ObjId(lock)).collect(),
        }
    }

    const G: Loc = Loc::Global(GlobalId(0));

    #[test]
    fn unsynchronized_write_write_is_a_race_under_all_policies() {
        for policy in [Policy::Hybrid, Policy::HappensBefore, Policy::Lockset] {
            let mut engine = DetectorEngine::new(policy);
            engine.on_event(&mem(0, 10, G, true, &[]));
            engine.on_event(&mem(1, 20, G, true, &[]));
            assert_eq!(engine.race_count(), 1, "{policy:?}");
            assert_eq!(
                engine.races().next().unwrap(),
                RacePair::new(InstrId(10), InstrId(20))
            );
        }
    }

    #[test]
    fn read_read_is_never_a_race() {
        for policy in [Policy::Hybrid, Policy::HappensBefore, Policy::Lockset] {
            let mut engine = DetectorEngine::new(policy);
            engine.on_event(&mem(0, 10, G, false, &[]));
            engine.on_event(&mem(1, 20, G, false, &[]));
            assert_eq!(engine.race_count(), 0, "{policy:?}");
        }
    }

    #[test]
    fn same_thread_accesses_do_not_race() {
        let mut engine = DetectorEngine::new(Policy::Lockset);
        engine.on_event(&mem(0, 10, G, true, &[]));
        engine.on_event(&mem(0, 20, G, true, &[]));
        assert_eq!(engine.race_count(), 0);
    }

    #[test]
    fn common_lock_suppresses_hybrid_and_lockset() {
        for policy in [Policy::Hybrid, Policy::Lockset] {
            let mut engine = DetectorEngine::new(policy);
            engine.on_event(&mem(0, 10, G, true, &[1, 2]));
            engine.on_event(&mem(1, 20, G, true, &[2, 3]));
            assert_eq!(engine.race_count(), 0, "{policy:?}: share lock 2");
        }
    }

    #[test]
    fn spawn_edge_orders_accesses_for_hybrid() {
        let mut engine = DetectorEngine::new(Policy::Hybrid);
        // Parent writes, then spawns child (Send/Recv), child writes.
        engine.on_event(&mem(0, 10, G, true, &[]));
        engine.on_event(&Event::Send {
            msg: 1,
            thread: ThreadId(0),
        });
        engine.on_event(&Event::Recv {
            msg: 1,
            thread: ThreadId(1),
        });
        engine.on_event(&mem(1, 20, G, true, &[]));
        assert_eq!(engine.race_count(), 0, "ordered by the spawn edge");
    }

    #[test]
    fn lock_edges_only_order_happens_before_policy() {
        // t0 writes under lock, releases; t1 acquires same lock, writes.
        let events = [
            Event::Acquire {
                thread: ThreadId(0),
                obj: ObjId(9),
                instr: InstrId(100),
            },
            mem(0, 10, G, true, &[9]),
            Event::Release {
                thread: ThreadId(0),
                obj: ObjId(9),
                instr: InstrId(101),
            },
            Event::Acquire {
                thread: ThreadId(1),
                obj: ObjId(9),
                instr: InstrId(102),
            },
            mem(1, 20, G, true, &[9]),
            Event::Release {
                thread: ThreadId(1),
                obj: ObjId(9),
                instr: InstrId(103),
            },
        ];
        // HappensBefore: ordered by the release→acquire edge → no race.
        let mut hb = DetectorEngine::new(Policy::HappensBefore);
        for event in &events {
            hb.on_event(event);
        }
        assert_eq!(hb.race_count(), 0);

        // The same trace with *different* locks is an HB race.
        let mut hb2 = DetectorEngine::new(Policy::HappensBefore);
        hb2.on_event(&mem(0, 10, G, true, &[1]));
        hb2.on_event(&mem(1, 20, G, true, &[2]));
        assert_eq!(hb2.race_count(), 1);
    }

    #[test]
    fn hybrid_predicts_race_hidden_by_lock_ordering() {
        // The signature difference: accesses to a location protected by
        // *different* locks in two threads, where the observed run ordered
        // them via an unrelated common lock. Hybrid still predicts; a pure
        // HB detector with lock edges would only see it by luck.
        let mut engine = DetectorEngine::new(Policy::Hybrid);
        engine.on_event(&mem(0, 10, G, true, &[5]));
        engine.on_event(&mem(1, 20, G, true, &[6]));
        assert_eq!(engine.race_count(), 1);
    }

    #[test]
    fn histories_are_memoised_in_loops() {
        let mut engine = DetectorEngine::new(Policy::Hybrid);
        for _ in 0..1000 {
            engine.on_event(&mem(0, 10, G, true, &[]));
        }
        engine.on_event(&mem(1, 20, G, false, &[]));
        assert_eq!(engine.race_count(), 1);
        let history_len = engine.histories.get(&G).map(Vec::len).unwrap();
        assert!(history_len <= 2, "history stays bounded, got {history_len}");
    }

    #[test]
    fn same_statement_can_race_with_itself_across_threads() {
        let mut engine = DetectorEngine::new(Policy::Hybrid);
        engine.on_event(&mem(0, 10, G, true, &[]));
        engine.on_event(&mem(1, 10, G, true, &[]));
        assert_eq!(
            engine.races().next().unwrap(),
            RacePair::new(InstrId(10), InstrId(10))
        );
    }

    #[test]
    fn distinct_locations_do_not_interact() {
        let mut engine = DetectorEngine::new(Policy::Lockset);
        engine.on_event(&mem(0, 10, Loc::Global(GlobalId(0)), true, &[]));
        engine.on_event(&mem(1, 20, Loc::Global(GlobalId(1)), true, &[]));
        assert_eq!(engine.race_count(), 0);
    }

    #[test]
    fn notify_wait_edge_orders_hybrid() {
        // Writer writes then notifies (Send); waiter receives then writes.
        let mut engine = DetectorEngine::new(Policy::Hybrid);
        engine.on_event(&mem(0, 10, G, true, &[7]));
        engine.on_event(&Event::Send {
            msg: 5,
            thread: ThreadId(0),
        });
        engine.on_event(&Event::Recv {
            msg: 5,
            thread: ThreadId(1),
        });
        engine.on_event(&mem(1, 20, G, true, &[8]));
        assert_eq!(engine.race_count(), 0);
    }

    #[test]
    fn disjoint_merge_scan_on_disjoint_sets() {
        assert!(disjoint(&[ObjId(1), ObjId(3)], &[ObjId(2), ObjId(4)]));
        assert!(disjoint(&[ObjId(1)], &[ObjId(2)]));
        assert!(disjoint(&[], &[ObjId(1)]));
        assert!(disjoint(&[ObjId(1)], &[]));
        assert!(disjoint(&[], &[]));
        // Interleaved without ever colliding.
        assert!(disjoint(
            &[ObjId(0), ObjId(2), ObjId(4), ObjId(6)],
            &[ObjId(1), ObjId(3), ObjId(5), ObjId(7)]
        ));
    }

    #[test]
    fn disjoint_merge_scan_on_overlapping_sets() {
        assert!(!disjoint(&[ObjId(1), ObjId(3)], &[ObjId(3)]));
        assert!(!disjoint(&[ObjId(3)], &[ObjId(1), ObjId(3)]));
        // Common element in the middle, found without a full product scan.
        assert!(!disjoint(
            &[ObjId(1), ObjId(5), ObjId(9)],
            &[ObjId(2), ObjId(5), ObjId(8)]
        ));
    }

    #[test]
    fn disjoint_merge_scan_on_subset_locksets() {
        // Subset in either direction is never disjoint (common lock exists).
        let inner = [ObjId(2), ObjId(4)];
        let outer = [ObjId(1), ObjId(2), ObjId(3), ObjId(4), ObjId(5)];
        assert!(!disjoint(&inner, &outer));
        assert!(!disjoint(&outer, &inner));
        assert!(!disjoint(&inner, &inner)); // a set is a subset of itself
    }
}
