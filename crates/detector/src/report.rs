//! Race reports: unordered pairs of statements.
//!
//! The paper counts races as "distinct pairs of statements for which there
//! is a race" (§5.2), so the report type is an unordered `(InstrId, InstrId)`
//! pair — possibly with both components equal, when two threads race through
//! the same statement.

use cil::flat::InstrId;
use cil::Program;
use std::fmt;

/// An unordered pair of (possibly equal) statements predicted or observed to
/// race. This is the paper's *racing pair of statements* `(s1, s2)` and the
/// input to Phase 2's `RaceSet`.
///
/// **Canonical by construction**: the fields are private and the only
/// constructor sorts its arguments, so `(s1, s2)` and `(s2, s1)` are the
/// *same value* — Phase 1 can discover a pair in either order across runs,
/// engines, or checkpoint round-trips without Phase 2 ever fuzzing it
/// twice. `detector/tests/pair_symmetry.rs` regression-tests this end to
/// end.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RacePair {
    first: InstrId,
    second: InstrId,
}

impl RacePair {
    /// Creates a pair; order of arguments does not matter.
    pub fn new(a: InstrId, b: InstrId) -> Self {
        if a <= b {
            RacePair { first: a, second: b }
        } else {
            RacePair {
                first: b,
                second: a,
            }
        }
    }

    /// `true` iff `first ≤ second`. Holds for every value the type can
    /// express (the constructor canonicalizes); exposed so tests can assert
    /// the invariant at API boundaries (prediction output, deserialized
    /// checkpoints) rather than trusting it silently.
    pub fn is_canonical(&self) -> bool {
        self.first <= self.second
    }

    /// The smaller statement id.
    pub fn first(&self) -> InstrId {
        self.first
    }

    /// The larger statement id.
    pub fn second(&self) -> InstrId {
        self.second
    }

    /// Returns `true` if `instr` is one of the two statements.
    pub fn contains(&self, instr: InstrId) -> bool {
        self.first == instr || self.second == instr
    }

    /// Returns the two statements as a slice-friendly array.
    pub fn instrs(&self) -> [InstrId; 2] {
        [self.first, self.second]
    }

    /// Human-readable description with disassembly and source positions.
    pub fn describe(&self, program: &Program) -> String {
        format!(
            "({}, {})",
            cil::pretty::describe_instr(program, self.first),
            cil::pretty::describe_instr(program, self.second)
        )
    }
}

impl fmt::Debug for RacePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RacePair({}, {})", self.first, self.second)
    }
}

impl fmt::Display for RacePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.first, self.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_unordered() {
        let a = RacePair::new(InstrId(5), InstrId(2));
        let b = RacePair::new(InstrId(2), InstrId(5));
        assert_eq!(a, b);
        assert_eq!(a.first(), InstrId(2));
        assert_eq!(a.second(), InstrId(5));
    }

    #[test]
    fn self_pair_is_allowed() {
        let pair = RacePair::new(InstrId(3), InstrId(3));
        assert!(pair.contains(InstrId(3)));
        assert_eq!(pair.instrs(), [InstrId(3), InstrId(3)]);
    }

    #[test]
    fn contains_checks_both_slots() {
        let pair = RacePair::new(InstrId(1), InstrId(9));
        assert!(pair.contains(InstrId(1)));
        assert!(pair.contains(InstrId(9)));
        assert!(!pair.contains(InstrId(4)));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(RacePair::new(InstrId(7), InstrId(3)).to_string(), "(3, 7)");
    }
}
