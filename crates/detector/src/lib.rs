//! Phase 1 of RaceFuzzer: imprecise-but-predictive race detection.
//!
//! The paper's pipeline starts by running the program once (or a few times)
//! under an *imprecise* dynamic race detector to compute potential racing
//! statement pairs. This crate provides that detector — the **hybrid**
//! lockset + happens-before analysis of O'Callahan & Choi, PPoPP 2003, which
//! the paper uses — plus the two classic baselines it is positioned against
//! (§1, §6): precise **happens-before** detection and Eraser-style
//! **lockset** detection.
//!
//! # Examples
//!
//! ```
//! use detector::{predict_races, PredictConfig};
//!
//! let program = cil::compile(
//!     r#"
//!     global x = 0;
//!     proc child() { x = 2; }
//!     proc main() {
//!         var t = spawn child();
//!         x = 1;          // races with the child's write
//!         join t;
//!     }
//!     "#,
//! )
//! .unwrap();
//! let races = predict_races(&program, "main", &PredictConfig::default()).unwrap();
//! assert_eq!(races.len(), 1);
//! ```

pub mod atomicity;
pub mod engine;
pub mod lockgraph;
pub mod report;
pub mod shadow;

pub use atomicity::{predict_atomicity_violations, AtomicityCandidate, AtomicityObserver};
pub use engine::{DetectorEngine, Policy};
pub use lockgraph::{predict_deadlocks, DeadlockCandidate, LockGraph};
pub use report::RacePair;
pub use shadow::EpochEngine;

use interp::{run_with, Limits, Observer, RandomScheduler, RoundRobinScheduler, SetupError};
use std::collections::BTreeSet;

/// Which Phase-1 engine implementation executes the chosen [`Policy`].
///
/// Both implementations compute the **same candidate-pair set** on every
/// trace (enforced by differential tests across all Table-1 workloads and
/// randomly generated programs); they differ only in cost. The naive
/// engine is kept as the oracle the fast engine is checked against, and as
/// the baseline the `phase1_detector` benchmark gates on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DetectorImpl {
    /// [`EpochEngine`]: FastTrack-style epoch shadow memory — O(1)
    /// happens-before fast paths, adaptive per-location representation,
    /// interned locksets, no per-event allocation. The default.
    #[default]
    Epoch,
    /// [`DetectorEngine`]: full vector clocks cloned into per-location
    /// histories — the straightforward formulation, kept as a
    /// differential-testing escape hatch.
    Naive,
}

impl DetectorImpl {
    /// Stable machine-readable name (benchmark JSON, reports).
    pub fn tag(&self) -> &'static str {
        match self {
            DetectorImpl::Epoch => "epoch",
            DetectorImpl::Naive => "naive",
        }
    }
}

/// Configuration for [`predict_races`].
#[derive(Clone, Debug)]
pub struct PredictConfig {
    /// Detection policy (default: [`Policy::Hybrid`], as in the paper).
    pub policy: Policy,
    /// Engine implementation (default: [`DetectorImpl::Epoch`]; use
    /// [`DetectorImpl::Naive`] for differential testing).
    pub detector: DetectorImpl,
    /// Seeds for additional randomly-scheduled observation runs. The
    /// detector also always performs one fair round-robin ("normal") run.
    /// More runs observe more code and predict more pairs.
    pub seeds: Vec<u64>,
    /// Per-run execution limits.
    pub limits: Limits,
}

impl Default for PredictConfig {
    fn default() -> Self {
        PredictConfig {
            policy: Policy::Hybrid,
            detector: DetectorImpl::default(),
            seeds: vec![1, 2],
            limits: Limits::default(),
        }
    }
}

impl PredictConfig {
    /// Convenience: hybrid policy with `count` random observation runs.
    pub fn with_runs(count: u64) -> Self {
        PredictConfig {
            seeds: (1..=count).collect(),
            ..Self::default()
        }
    }
}

/// Runs the program under observation and returns the predicted racing
/// statement pairs (the paper's Phase 1).
///
/// Race pairs are unioned across one deterministic run plus one run per
/// configured seed, then returned in stable order.
///
/// # Errors
///
/// Returns [`SetupError`] if `entry` does not name a zero-argument
/// procedure.
pub fn predict_races(
    program: &cil::Program,
    entry: &str,
    config: &PredictConfig,
) -> Result<Vec<RacePair>, SetupError> {
    match config.detector {
        DetectorImpl::Epoch => predict_with(program, entry, config, EpochEngine::new, |engine| {
            engine.races().collect()
        }),
        DetectorImpl::Naive => predict_with(program, entry, config, DetectorEngine::new, |engine| {
            engine.races().collect()
        }),
    }
}

/// The engine-generic prediction loop: one fair round-robin run plus one
/// random run per seed, racing pairs unioned in stable order.
fn predict_with<E: Observer>(
    program: &cil::Program,
    entry: &str,
    config: &PredictConfig,
    new_engine: impl Fn(Policy) -> E,
    races: impl Fn(&E) -> Vec<RacePair>,
) -> Result<Vec<RacePair>, SetupError> {
    let mut all: BTreeSet<RacePair> = BTreeSet::new();

    // One deterministic fair run (busy-wait synchronization in the
    // observed program requires scheduler fairness to terminate)…
    let mut engine = new_engine(config.policy);
    run_with(
        program,
        entry,
        &mut RoundRobinScheduler::new(7),
        &mut engine,
        config.limits,
    )?;
    all.extend(races(&engine));

    for &seed in &config.seeds {
        let mut engine = new_engine(config.policy);
        run_with(
            program,
            entry,
            &mut RandomScheduler::seeded(seed),
            &mut engine,
            config.limits,
        )?;
        all.extend(races(&engine));
    }

    Ok(all.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predict(source: &str) -> (cil::Program, Vec<RacePair>) {
        let program = cil::compile(source).unwrap();
        let races = predict_races(&program, "main", &PredictConfig::default()).unwrap();
        (program, races)
    }

    #[test]
    fn lock_protected_counter_has_no_races() {
        let (_, races) = predict(
            r#"
            class Lock { }
            global l;
            global count = 0;
            proc worker() {
                var i = 0;
                while (i < 5) {
                    sync (l) { count = count + 1; }
                    i = i + 1;
                }
            }
            proc main() {
                l = new Lock;
                var a = spawn worker();
                var b = spawn worker();
                join a; join b;
            }
            "#,
        );
        assert!(races.is_empty(), "got {races:?}");
    }

    #[test]
    fn unprotected_counter_races_with_itself() {
        let (program, races) = predict(
            r#"
            global count = 0;
            proc worker() { count = count + 1; }
            proc main() {
                var a = spawn worker();
                var b = spawn worker();
                join a; join b;
            }
            "#,
        );
        // load/load, load/store, store/store combinations on `count`,
        // all between the two dynamic instances of the same statements.
        assert!(!races.is_empty());
        for race in &races {
            let text = race.describe(&program);
            assert!(text.contains("count"), "{text}");
        }
    }

    #[test]
    fn join_edge_prevents_false_positive() {
        let (_, races) = predict(
            r#"
            global x = 0;
            proc child() { x = 1; }
            proc main() {
                var t = spawn child();
                join t;
                x = 2;     // ordered after the child's write by join
            }
            "#,
        );
        assert!(races.is_empty(), "got {races:?}");
    }

    #[test]
    fn tagged_pair_is_predicted() {
        let program = cil::compile(
            r#"
            global z = 0;
            proc child() { @w z = 1; }
            proc main() {
                var t = spawn child();
                @r var v = z;
                join t;
            }
            "#,
        )
        .unwrap();
        let races = predict_races(&program, "main", &PredictConfig::default()).unwrap();
        let expected = RacePair::new(program.tagged_access("w"), program.tagged_access("r"));
        assert_eq!(races, vec![expected]);
    }

    #[test]
    fn more_runs_can_only_add_pairs() {
        let source = r#"
            global a = 0;
            global b = 0;
            proc child() {
                if (a == 1) { b = 1; }
            }
            proc main() {
                var t = spawn child();
                a = 1;
                var v = b;
                join t;
            }
        "#;
        let program = cil::compile(source).unwrap();
        let few = predict_races(&program, "main", &PredictConfig::with_runs(1)).unwrap();
        let many = predict_races(&program, "main", &PredictConfig::with_runs(20)).unwrap();
        for pair in &few {
            assert!(many.contains(pair));
        }
        assert!(many.len() >= few.len());
    }
}
