//! Epoch-optimized shadow memory: the fast Phase-1 engine.
//!
//! [`EpochEngine`] computes exactly the candidate-pair set of the naive
//! [`DetectorEngine`](crate::DetectorEngine) (the differential tests in
//! `tests/` and `crates/detector/tests/` prove it byte-identical on every
//! workload), but restructures the per-event work around three
//! observations:
//!
//! 1. **Epochs, not clocks** (FastTrack). A remembered access only ever
//!    needs the accessing thread's *own* clock component: by the ownership
//!    lemma (see [`vclock::Epoch`]), `old ⊑ new` collapses to
//!    `new.clock[old.thread] ≥ old.time`, and the reverse direction
//!    `new ⊑ old` is impossible because the new access just ticked its own
//!    component past anything any older clock can know. So the naive
//!    engine's two O(threads) pointwise comparisons — plus the full-clock
//!    clone it stores per access — become one `u64` comparison and a
//!    16-byte `Copy`.
//! 2. **Adaptive shadow words.** A location starts *exclusive*: as long as
//!    every access comes from one thread, no race check can fire, so the
//!    engine only deduplicates against the (usually single) stored
//!    signature and returns. The word *inflates* to the shared
//!    representation — a vector of access records forming the bounded,
//!    signature-memoised candidate history — only when a second thread
//!    actually touches the location. Each stored record also remembers how
//!    much of the history its signature has been race-checked against, so
//!    a loop re-executing the same access degenerates to a signature
//!    lookup: re-checking older records is provably redundant (clocks only
//!    grow — an ordered verdict stays ordered, and a racy verdict already
//!    put the pair in the set).
//! 3. **Dense indices, not hashing.** Shadow state lives in a flat
//!    `Vec<ShadowWord>`; globals map to slots by direct array index and
//!    object fields/elements through a tiny per-object key list, so the hot
//!    path never hashes a [`Loc`]. Locksets are interned once per *change*
//!    of a thread's held-lock set (a per-thread cache makes the unchanged
//!    case a short slice compare), so the signature memoisation and the
//!    common-lock check compare `u32` ids instead of `Vec<ObjId>`s.

use crate::engine::{disjoint, Policy};
use crate::report::RacePair;
use cil::flat::{GlobalId, InstrId};
use cil::Symbol;
use interp::{Event, Loc, MsgId, Observer, ObjId, ThreadId};
use std::collections::{BTreeSet, HashMap};
use vclock::VectorClock;

/// One remembered access: the epoch `(thread, time)` plus the signature
/// fields the memoisation and the race predicate need. 32 bytes, `Copy` —
/// vs the naive engine's heap-backed clock and lockset per access.
#[derive(Clone, Copy, Debug)]
struct AccessRec {
    thread: u32,
    /// The accessing thread's own clock component at the access (its
    /// [`vclock::Epoch`] time; the thread id doubles as the epoch thread).
    time: u64,
    instr: InstrId,
    /// Interned lockset id (see [`LocksetTable`]).
    lockset: u32,
    is_write: bool,
    /// How many history records this signature has been race-checked
    /// against (a history prefix length). A later occurrence of the same
    /// signature only needs to check records *beyond* this prefix: against
    /// anything older, the duplicate's verdict is implied — clocks only
    /// grow, so if the first occurrence was ordered after an old record,
    /// every later occurrence is too, and if it raced, the pair is already
    /// in the set. In steady-state loops this makes a repeated access O(1)
    /// after the signature lookup.
    checked: u32,
}

impl AccessRec {
    #[inline]
    fn same_signature(&self, other: &AccessRec) -> bool {
        self.thread == other.thread
            && self.instr == other.instr
            && self.is_write == other.is_write
            && self.lockset == other.lockset
    }
}

/// Per-location shadow state. `first` is stored inline so the dominant
/// "one signature ever" case costs no per-location heap allocation beyond
/// the flat shadow vector itself.
#[derive(Clone, Debug)]
struct ShadowWord {
    first: AccessRec,
    rest: Vec<AccessRec>,
    /// `true` while every access to this location came from `first.thread`
    /// — the cheap representation; cleared on inflation.
    exclusive: bool,
    /// Index of the most recently matched record. Schedulers run threads
    /// in slices, so consecutive accesses to a word usually repeat one
    /// signature; checking the hint first makes those lookups O(1).
    hint: u32,
}

impl ShadowWord {
    /// History length, counting the inline `first` record.
    fn len(&self) -> usize {
        1 + self.rest.len()
    }

    fn get(&self, index: usize) -> &AccessRec {
        if index == 0 {
            &self.first
        } else {
            &self.rest[index - 1]
        }
    }

    /// Index of the record with `rec`'s signature, if any. Signatures are
    /// unique in a history (duplicates are never pushed), so this is the
    /// only candidate. The hint short-circuits the repeated-access case.
    fn find_signature(&self, rec: &AccessRec) -> Option<usize> {
        let hint = self.hint as usize;
        if hint < self.len() && self.get(hint).same_signature(rec) {
            return Some(hint);
        }
        if self.first.same_signature(rec) {
            return Some(0);
        }
        self.rest
            .iter()
            .position(|old| old.same_signature(rec))
            .map(|pos| pos + 1)
    }
}

/// Locksets interned to dense `u32` ids; id 0 is the empty set.
#[derive(Clone, Debug)]
struct LocksetTable {
    sets: Vec<Box<[ObjId]>>,
    index: HashMap<Box<[ObjId]>, u32>,
}

impl LocksetTable {
    fn new() -> Self {
        let empty: Box<[ObjId]> = Box::new([]);
        LocksetTable {
            sets: vec![empty.clone()],
            index: HashMap::from([(empty, 0)]),
        }
    }

    /// Interns a sorted lockset. Only reached when a thread's held-lock
    /// set changed since its previous access (the per-thread cache filters
    /// the common case), so the hash is off the hot path.
    fn intern(&mut self, locks: &[ObjId]) -> u32 {
        if locks.is_empty() {
            return 0;
        }
        if let Some(&id) = self.index.get(locks) {
            return id;
        }
        let id = self.sets.len() as u32;
        let boxed: Box<[ObjId]> = locks.into();
        self.sets.push(boxed.clone());
        self.index.insert(boxed, id);
        id
    }

    /// Merge-scan disjointness over interned ids, with the two O(1)
    /// outcomes (empty set, identical non-empty set) short-circuited.
    #[inline]
    fn disjoint(&self, a: u32, b: u32) -> bool {
        if a == 0 || b == 0 {
            return true;
        }
        if a == b {
            return false;
        }
        disjoint(&self.sets[a as usize], &self.sets[b as usize])
    }
}

/// Per-thread cache of every lockset the thread has held, with its
/// interned id. Threads hold a handful of distinct locksets over a whole
/// run — but *alternate* between them constantly (enter `sync`, leave
/// `sync`), so a single-entry cache would re-intern on nearly every
/// access. A short linear scan resolves any previously seen set without
/// hashing.
#[derive(Clone, Debug, Default)]
struct ThreadLocksets {
    entries: Vec<(Vec<ObjId>, u32)>,
}

const FIELD_TAG: u64 = 1 << 32;
const ELEM_TAG: u64 = 2 << 32;
const NO_SLOT: u32 = u32::MAX;

/// Maps dynamic locations to dense shadow-word slots without hashing:
/// globals by direct index, object fields/elements through a short
/// per-object `(key, slot)` list (objects have few distinct fields).
#[derive(Clone, Debug, Default)]
struct LocIndex {
    globals: Vec<u32>,
    objects: Vec<Vec<(u64, u32)>>,
}

impl LocIndex {
    /// Returns the location's slot and whether it was just created (in
    /// which case the caller must push shadow word number `next`).
    fn slot(&mut self, loc: Loc, next: u32) -> (u32, bool) {
        match loc {
            Loc::Global(GlobalId(global)) => {
                let global = global as usize;
                if global >= self.globals.len() {
                    self.globals.resize(global + 1, NO_SLOT);
                }
                if self.globals[global] == NO_SLOT {
                    self.globals[global] = next;
                    (next, true)
                } else {
                    (self.globals[global], false)
                }
            }
            Loc::Field(ObjId(obj), Symbol(sym)) => {
                self.object_slot(obj, FIELD_TAG | u64::from(sym), next)
            }
            Loc::Elem(ObjId(obj), index) => {
                self.object_slot(obj, ELEM_TAG | u64::from(index), next)
            }
        }
    }

    fn object_slot(&mut self, obj: u32, key: u64, next: u32) -> (u32, bool) {
        let obj = obj as usize;
        if obj >= self.objects.len() {
            self.objects.resize_with(obj + 1, Vec::new);
        }
        let entries = &mut self.objects[obj];
        for &(stored, slot) in entries.iter() {
            if stored == key {
                return (slot, false);
            }
        }
        entries.push((key, next));
        (next, true)
    }
}

/// The epoch-optimized Phase-1 engine ([`crate::DetectorImpl::Epoch`]).
///
/// Drop-in replacement for [`crate::DetectorEngine`] as an [`Observer`]:
/// same policies, same candidate-pair output, O(1) per-access
/// happens-before checks and no per-event heap allocation.
#[derive(Clone, Debug)]
pub struct EpochEngine {
    policy: Policy,
    clocks: Vec<VectorClock>,
    msg_clocks: HashMap<MsgId, VectorClock>,
    release_clocks: HashMap<ObjId, VectorClock>,
    locksets: LocksetTable,
    thread_locksets: Vec<ThreadLocksets>,
    locs: LocIndex,
    shadow: Vec<ShadowWord>,
    races: BTreeSet<RacePair>,
    events_seen: u64,
}

impl EpochEngine {
    /// Creates an engine with the given policy.
    pub fn new(policy: Policy) -> Self {
        EpochEngine {
            policy,
            clocks: Vec::new(),
            msg_clocks: HashMap::new(),
            release_clocks: HashMap::new(),
            locksets: LocksetTable::new(),
            thread_locksets: Vec::new(),
            locs: LocIndex::default(),
            shadow: Vec::new(),
            races: BTreeSet::new(),
            events_seen: 0,
        }
    }

    /// The policy this engine applies.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Number of events processed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// The distinct racing statement pairs found so far, in stable order.
    pub fn races(&self) -> impl Iterator<Item = RacePair> + '_ {
        self.races.iter().copied()
    }

    /// Consumes the engine, returning the racing pairs.
    pub fn into_races(self) -> Vec<RacePair> {
        self.races.into_iter().collect()
    }

    /// Number of distinct racing pairs.
    pub fn race_count(&self) -> usize {
        self.races.len()
    }

    /// Number of distinct locations with shadow state.
    pub fn location_count(&self) -> usize {
        self.shadow.len()
    }

    /// Locations that inflated to the shared representation (a second
    /// thread touched them). The exclusive remainder never ran a race
    /// check.
    pub fn inflated_count(&self) -> usize {
        self.shadow.iter().filter(|word| !word.exclusive).count()
    }

    fn ensure_thread(&mut self, thread: usize) {
        if thread >= self.clocks.len() {
            self.clocks.resize(thread + 1, VectorClock::new());
            self.thread_locksets
                .resize_with(thread + 1, ThreadLocksets::default);
        }
    }

    fn tick(&mut self, thread: ThreadId) -> u64 {
        let index = thread.index();
        self.ensure_thread(index);
        self.clocks[index].tick(index)
    }

    fn uses_lock_edges(&self) -> bool {
        self.policy == Policy::HappensBefore
    }

    fn on_mem(&mut self, thread: ThreadId, instr: InstrId, loc: Loc, is_write: bool, locks: &[ObjId]) {
        let index = thread.index();
        let time = self.tick(thread);

        // Lockset interning behind a per-thread cache of every set the
        // thread has held: the overwhelmingly common case (re-holding a
        // known set, including re-entering the same `sync` block each loop
        // iteration) costs a short linear scan and no hashing.
        let cache = &mut self.thread_locksets[index];
        let lockset = match cache.entries.iter().find(|(held, _)| held == locks) {
            Some(&(_, id)) => id,
            None => {
                let id = self.locksets.intern(locks);
                cache.entries.push((locks.to_vec(), id));
                id
            }
        };
        let mut rec = AccessRec {
            thread: index as u32,
            time,
            instr,
            lockset,
            is_write,
            checked: 0,
        };

        let (slot, created) = self.locs.slot(loc, self.shadow.len() as u32);
        if created {
            rec.checked = 1; // checked against the whole (empty) history + itself
            self.shadow.push(ShadowWord {
                first: rec,
                rest: Vec::new(),
                exclusive: true,
                hint: 0,
            });
            return;
        }
        let slot = slot as usize;
        let word = &self.shadow[slot];
        let len = word.len();

        // A repeated signature only needs to be race-checked against
        // records added since its last check (see `AccessRec::checked`);
        // in the steady state of a loop that prefix covers everything and
        // the access costs one signature lookup. New signatures check the
        // whole history.
        let found = word.find_signature(&rec);
        let start = match found {
            Some(at) => {
                let checked = word.get(at).checked as usize;
                if checked >= len {
                    self.shadow[slot].hint = at as u32;
                    return;
                }
                checked
            }
            None => 0,
        };

        // The happens-before side of the predicate is the O(1) epoch
        // check: `old` is ordered before `rec` iff rec's clock already
        // covers old's epoch; the other direction can never hold because
        // `rec` just ticked its own component (see module docs).
        let clock = &self.clocks[index];
        for at in start..len {
            let old = word.get(at);
            if old.thread != rec.thread && (old.is_write || rec.is_write) {
                let racy = match self.policy {
                    Policy::Hybrid => {
                        self.locksets.disjoint(old.lockset, rec.lockset)
                            && clock.get(old.thread as usize) < old.time
                    }
                    Policy::HappensBefore => clock.get(old.thread as usize) < old.time,
                    Policy::Lockset => self.locksets.disjoint(old.lockset, rec.lockset),
                };
                if racy {
                    self.races.insert(RacePair::new(old.instr, rec.instr));
                }
            }
        }

        let word = &mut self.shadow[slot];
        match found {
            Some(at) => {
                // Duplicate: memoised out, but remember how far it checked.
                let stored = if at == 0 {
                    &mut word.first
                } else {
                    &mut word.rest[at - 1]
                };
                stored.checked = len as u32;
                word.hint = at as u32;
            }
            None => {
                // `+ 1` counts the record itself: it can never race with
                // its own (same-thread) later occurrences.
                rec.checked = (len + 1) as u32;
                let foreign = rec.thread != word.first.thread;
                word.rest.push(rec);
                word.hint = len as u32;
                if foreign {
                    word.exclusive = false;
                }
            }
        }
    }
}

impl Observer for EpochEngine {
    fn on_event(&mut self, event: &Event) {
        self.events_seen += 1;
        match event {
            Event::Mem {
                thread,
                instr,
                loc,
                is_write,
                locks,
            } => self.on_mem(*thread, *instr, *loc, *is_write, locks),
            Event::Send { msg, thread } => {
                self.tick(*thread);
                let snapshot = self.clocks[thread.index()].clone();
                self.msg_clocks.insert(*msg, snapshot);
            }
            Event::Recv { msg, thread } => {
                let index = thread.index();
                self.ensure_thread(index);
                if let Some(snapshot) = self.msg_clocks.get(msg) {
                    self.clocks[index].join(snapshot);
                }
                self.tick(*thread);
            }
            Event::Acquire { thread, obj, .. } => {
                if self.uses_lock_edges() {
                    let index = thread.index();
                    self.ensure_thread(index);
                    if let Some(snapshot) = self.release_clocks.get(obj) {
                        self.clocks[index].join(snapshot);
                    }
                    self.tick(*thread);
                }
            }
            Event::Release { thread, obj, .. } => {
                if self.uses_lock_edges() {
                    self.tick(*thread);
                    let snapshot = self.clocks[thread.index()].clone();
                    self.release_clocks.insert(*obj, snapshot);
                }
            }
            Event::ThreadSpawned { .. }
            | Event::ThreadExited { .. }
            | Event::ExceptionThrown { .. }
            | Event::ExceptionCaught { .. }
            | Event::Allocated { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil::flat::GlobalId;

    fn mem(thread: u32, instr: u32, loc: Loc, is_write: bool, locks: &[u32]) -> Event {
        Event::Mem {
            thread: ThreadId(thread),
            instr: InstrId(instr),
            loc,
            is_write,
            locks: locks.iter().map(|&lock| ObjId(lock)).collect(),
        }
    }

    const G: Loc = Loc::Global(GlobalId(0));

    #[test]
    fn unsynchronized_write_write_is_a_race_under_all_policies() {
        for policy in [Policy::Hybrid, Policy::HappensBefore, Policy::Lockset] {
            let mut engine = EpochEngine::new(policy);
            engine.on_event(&mem(0, 10, G, true, &[]));
            engine.on_event(&mem(1, 20, G, true, &[]));
            assert_eq!(engine.race_count(), 1, "{policy:?}");
            assert_eq!(
                engine.races().next().unwrap(),
                RacePair::new(InstrId(10), InstrId(20))
            );
        }
    }

    #[test]
    fn read_read_is_never_a_race() {
        for policy in [Policy::Hybrid, Policy::HappensBefore, Policy::Lockset] {
            let mut engine = EpochEngine::new(policy);
            engine.on_event(&mem(0, 10, G, false, &[]));
            engine.on_event(&mem(1, 20, G, false, &[]));
            assert_eq!(engine.race_count(), 0, "{policy:?}");
        }
    }

    #[test]
    fn common_lock_suppresses_hybrid_and_lockset() {
        for policy in [Policy::Hybrid, Policy::Lockset] {
            let mut engine = EpochEngine::new(policy);
            engine.on_event(&mem(0, 10, G, true, &[1, 2]));
            engine.on_event(&mem(1, 20, G, true, &[2, 3]));
            assert_eq!(engine.race_count(), 0, "{policy:?}: share lock 2");
        }
    }

    #[test]
    fn spawn_edge_orders_accesses_for_hybrid() {
        let mut engine = EpochEngine::new(Policy::Hybrid);
        engine.on_event(&mem(0, 10, G, true, &[]));
        engine.on_event(&Event::Send {
            msg: 1,
            thread: ThreadId(0),
        });
        engine.on_event(&Event::Recv {
            msg: 1,
            thread: ThreadId(1),
        });
        engine.on_event(&mem(1, 20, G, true, &[]));
        assert_eq!(engine.race_count(), 0, "ordered by the spawn edge");
    }

    #[test]
    fn lock_edges_only_order_happens_before_policy() {
        let events = [
            Event::Acquire {
                thread: ThreadId(0),
                obj: ObjId(9),
                instr: InstrId(100),
            },
            mem(0, 10, G, true, &[9]),
            Event::Release {
                thread: ThreadId(0),
                obj: ObjId(9),
                instr: InstrId(101),
            },
            Event::Acquire {
                thread: ThreadId(1),
                obj: ObjId(9),
                instr: InstrId(102),
            },
            mem(1, 20, G, true, &[9]),
            Event::Release {
                thread: ThreadId(1),
                obj: ObjId(9),
                instr: InstrId(103),
            },
        ];
        let mut hb = EpochEngine::new(Policy::HappensBefore);
        for event in &events {
            hb.on_event(event);
        }
        assert_eq!(hb.race_count(), 0);

        let mut hb2 = EpochEngine::new(Policy::HappensBefore);
        hb2.on_event(&mem(0, 10, G, true, &[1]));
        hb2.on_event(&mem(1, 20, G, true, &[2]));
        assert_eq!(hb2.race_count(), 1);
    }

    #[test]
    fn histories_stay_memoised_in_loops() {
        let mut engine = EpochEngine::new(Policy::Hybrid);
        for _ in 0..1000 {
            engine.on_event(&mem(0, 10, G, true, &[]));
        }
        engine.on_event(&mem(1, 20, G, false, &[]));
        assert_eq!(engine.race_count(), 1);
        let word = &engine.shadow[0];
        assert!(
            word.rest.len() <= 1,
            "history stays bounded, got {}",
            1 + word.rest.len()
        );
    }

    #[test]
    fn exclusive_locations_never_inflate() {
        let mut engine = EpochEngine::new(Policy::Hybrid);
        for instr in 0..8 {
            engine.on_event(&mem(0, instr, G, true, &[]));
            engine.on_event(&mem(0, instr, Loc::Global(GlobalId(1)), false, &[]));
        }
        assert_eq!(engine.location_count(), 2);
        assert_eq!(engine.inflated_count(), 0, "single-thread accesses stay cheap");
        // A second thread inflates exactly the location it touches.
        engine.on_event(&mem(1, 99, G, false, &[]));
        assert_eq!(engine.inflated_count(), 1);
    }

    #[test]
    fn same_statement_can_race_with_itself_across_threads() {
        let mut engine = EpochEngine::new(Policy::Hybrid);
        engine.on_event(&mem(0, 10, G, true, &[]));
        engine.on_event(&mem(1, 10, G, true, &[]));
        assert_eq!(
            engine.races().next().unwrap(),
            RacePair::new(InstrId(10), InstrId(10))
        );
    }

    #[test]
    fn distinct_locations_do_not_interact() {
        let mut engine = EpochEngine::new(Policy::Lockset);
        engine.on_event(&mem(0, 10, Loc::Global(GlobalId(0)), true, &[]));
        engine.on_event(&mem(1, 20, Loc::Global(GlobalId(1)), true, &[]));
        assert_eq!(engine.race_count(), 0);
    }

    #[test]
    fn field_and_elem_locations_resolve_through_the_object_index() {
        let mut engine = EpochEngine::new(Policy::Hybrid);
        let field_a = Loc::Field(ObjId(3), Symbol(0));
        let field_b = Loc::Field(ObjId(3), Symbol(1));
        let elem = Loc::Elem(ObjId(3), 0);
        engine.on_event(&mem(0, 1, field_a, true, &[]));
        engine.on_event(&mem(0, 2, field_b, true, &[]));
        engine.on_event(&mem(0, 3, elem, true, &[]));
        assert_eq!(engine.location_count(), 3, "three distinct locations");
        engine.on_event(&mem(1, 4, field_a, true, &[]));
        assert_eq!(engine.race_count(), 1, "only field_a races");
    }

    #[test]
    fn lockset_interning_deduplicates_ids() {
        let mut table = LocksetTable::new();
        let a = table.intern(&[ObjId(1), ObjId(2)]);
        let b = table.intern(&[ObjId(1), ObjId(2)]);
        let c = table.intern(&[ObjId(3)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(table.intern(&[]), 0);
        assert!(table.disjoint(0, a));
        assert!(!table.disjoint(a, b));
        assert!(table.disjoint(a, c));
    }

    #[test]
    fn later_duplicate_access_still_finds_new_pairs() {
        // t0 writes s1; sync edge t0→t1; t1 writes s2 (ordered after s1's
        // first occurrence, so no race yet); t0 writes s1 *again* — same
        // signature, but this occurrence is concurrent with s2. The naive
        // engine finds (s1, s2) while race-checking the duplicate before
        // dropping it; the fast path must too.
        let mut engine = EpochEngine::new(Policy::Hybrid);
        engine.on_event(&mem(0, 1, G, true, &[]));
        engine.on_event(&Event::Send {
            msg: 7,
            thread: ThreadId(0),
        });
        engine.on_event(&Event::Recv {
            msg: 7,
            thread: ThreadId(1),
        });
        engine.on_event(&mem(1, 2, G, true, &[]));
        assert_eq!(engine.race_count(), 0, "ordered by the edge");
        engine.on_event(&mem(0, 1, G, true, &[]));
        assert_eq!(engine.race_count(), 1, "duplicate is still race-checked");
        assert_eq!(
            engine.races().next().unwrap(),
            RacePair::new(InstrId(1), InstrId(2))
        );
    }
}
