//! Quickstart: find, confirm, and replay a data race in a small CIL
//! program with the full two-phase RaceFuzzer pipeline.
//!
//! Run with: `cargo run --example quickstart`

use racefuzzer_suite::prelude::*;

fn main() {
    // A bank-account model with a classic check-then-act race: both
    // tellers read the balance, then write it back without holding the
    // lock for the whole read-modify-write.
    let program = cil::compile(
        r#"
        class Account { balance }
        global account;

        proc deposit(amount) {
            var acct = account;
            @read_balance var current = acct.balance;
            @write_balance acct.balance = current + amount;
        }

        proc main() {
            var acct = new Account;
            acct.balance = 100;
            account = acct;
            var t1 = spawn deposit(50);
            var t2 = spawn deposit(25);
            join t1;
            join t2;
            var a2 = account;
            var final_balance = a2.balance;
            assert final_balance == 175 : "a deposit was lost";
        }
        "#,
    )
    .expect("the example program is valid CIL");

    // Phase 1: predict potential races with the hybrid detector.
    let potential = predict_races(&program, "main", &PredictConfig::default())
        .expect("prediction runs");
    println!("Phase 1 predicted {} potential racing pair(s):", potential.len());
    for pair in &potential {
        println!("  {}", pair.describe(&program));
    }

    // Phase 2: direct the random scheduler at each pair.
    let report = analyze(&program, "main", &AnalyzeOptions::with_trials(50))
        .expect("analysis runs");
    println!("\nPhase 2 confirmed {} real race(s):", report.real_races().len());
    for pair_report in &report.pairs {
        println!(
            "  {} -> hits {}/{} (P = {:.2}), exceptions: {:?}",
            pair_report.target.describe(&program),
            pair_report.hits,
            pair_report.trials,
            pair_report.hit_probability(),
            pair_report.exceptions.keys().collect::<Vec<_>>()
        );
        // Deterministic replay from the seed alone — no trace recording.
        if let Some(seed) = pair_report.first_exception_seed {
            let replayed =
                replay(&program, "main", pair_report.target, seed).expect("replay runs");
            println!(
                "  replaying seed {seed}: race at step {}, uncaught {:?}",
                replayed.races.first().map(|race| race.step).unwrap_or(0),
                replayed.uncaught_names(&program),
            );
        }
    }

    println!(
        "\nThe lost-update bug fires as an AssertionError in roughly half of the \
         race-creating trials — the paper's 'random race resolution' at work."
    );
}
