//! Reproduces the paper's §5.3 JDK finding: calling
//! `l1.containsAll(l2)` and a mutation of `l2` from two threads — with
//! both lists wrapped by `Collections.synchronizedList` — throws
//! `ConcurrentModificationException` / `NoSuchElementException`, because
//! the decorator inherits `containsAll` from `AbstractCollection`, which
//! iterates the *argument* without holding its lock.
//!
//! Run with: `cargo run --example find_collections_bug`

use racefuzzer_suite::prelude::*;

fn main() {
    for workload in [
        racefuzzer_suite::workloads::linked_list(),
        racefuzzer_suite::workloads::array_list(),
        racefuzzer_suite::workloads::hash_set(),
        racefuzzer_suite::workloads::tree_set(),
    ] {
        println!("=== {} ===", workload.name);
        let report = analyze(
            &workload.program,
            workload.entry,
            &AnalyzeOptions::with_trials(60),
        )
        .expect("analysis runs");

        println!(
            "  potential pairs: {}, confirmed real: {}",
            report.potential.len(),
            report.real_races().len()
        );

        let mut found_bug = false;
        for pair_report in &report.pairs {
            if pair_report.exception_trials == 0 {
                continue;
            }
            found_bug = true;
            println!(
                "  harmful race {} -> {:?} in {}/{} trials",
                pair_report.target,
                pair_report.exceptions.keys().collect::<Vec<_>>(),
                pair_report.exception_trials,
                pair_report.trials
            );
            if let Some(seed) = pair_report.first_exception_seed {
                let outcome = replay(&workload.program, workload.entry, pair_report.target, seed)
                    .expect("replay runs");
                println!(
                    "    replay seed {seed}: {:?} after {} steps",
                    outcome.uncaught_names(&workload.program),
                    outcome.steps
                );
            }
        }
        assert!(found_bug, "{}: the JDK bug should reproduce", workload.name);
        println!();
    }

    println!(
        "All four collection classes exhibit the unlocked-iterator bug, found \
         automatically — no manual inspection of the potential-race reports."
    );
}
