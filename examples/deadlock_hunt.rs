//! Deadlock-directed random testing — the paper's §1 generalisation of
//! RaceFuzzer ("we can bias the random scheduler by … potential
//! deadlocks"): predict lock-order cycles from observed runs, then direct
//! the scheduler to close each cycle. Confirmed deadlocks end with
//! Algorithm 1's "ERROR: actual deadlock found" and replay from a seed.
//!
//! Run with: `cargo run --example deadlock_hunt`

use racefuzzer_suite::prelude::*;
use racefuzzer_suite::racefuzzer::{hunt_deadlocks, DeadlockOptions};

fn main() {
    // Three dining philosophers, each taking the left fork then the right:
    // a length-3 lock-order cycle — invisible to pairwise checks, caught
    // by the lock-order graph, and driven into an actual deadlock by the
    // biased scheduler.
    let program = cil::compile(
        r#"
        class Fork { }
        global f0;
        global f1;
        global f2;

        proc philosopher(left, right, meals) {
            var i = 0;
            while (i < meals) {
                sync (left) {
                    nop;                  // picked up the left fork…
                    sync (right) {
                        nop;              // …eating
                    }
                }
                i = i + 1;
            }
        }

        proc main() {
            f0 = new Fork;
            f1 = new Fork;
            f2 = new Fork;
            var p0 = spawn philosopher(f0, f1, 2);
            var p1 = spawn philosopher(f1, f2, 2);
            var p2 = spawn philosopher(f2, f0, 2);
            join p0;
            join p1;
            join p2;
        }
        "#,
    )
    .expect("the example program is valid CIL");

    let report = hunt_deadlocks(&program, "main", &DeadlockOptions::default())
        .expect("the hunt runs");

    println!(
        "Phase 1 (lock-order graph) predicted {} cycle(s):",
        report.candidates.len()
    );
    for candidate in &report.candidates {
        println!("  {}", candidate.describe(&program));
    }

    println!("\nPhase 2 (deadlock-directed scheduling):");
    for confirmation in &report.confirmations {
        println!(
            "  {}-cycle: deadlocked in {}/{} trials (P = {:.2}), replay seed {:?}",
            confirmation.candidate.len(),
            confirmation.deadlocks,
            confirmation.trials,
            confirmation.hit_probability(),
            confirmation.first_seed,
        );
    }
    assert!(
        !report.real_deadlocks().is_empty(),
        "the philosophers must deadlock under direction"
    );

    // Undirected baseline: plain random scheduling rarely closes the cycle.
    let trials = 100u64;
    let mut undirected = 0u64;
    for seed in 0..trials {
        let outcome = run_with(
            &program,
            "main",
            &mut RandomScheduler::seeded(seed),
            &mut NullObserver,
            Limits::default(),
        )
        .expect("run succeeds");
        if outcome.deadlocked() {
            undirected += 1;
        }
    }
    println!(
        "\nundirected random scheduling deadlocks in {undirected}/{trials} trials — \
         direction makes the bug reproducible on demand."
    );
}
