//! Fault-tolerant campaigns: interrupt a run mid-flight, resume it from
//! its checkpoint, and replay a failure artifact — all on the paper's
//! Figure 1 workload.
//!
//! Run with: `cargo run --example campaign_resume`

use racefuzzer_suite::prelude::*;

fn main() {
    let workdir = std::env::temp_dir().join(format!("campaign-demo-{}", std::process::id()));
    std::fs::create_dir_all(&workdir).expect("temp dir is writable");
    let checkpoint = workdir.join("checkpoint.json");
    let artifacts = workdir.join("artifacts");

    let jobs = || {
        vec![
            CampaignJob::new("figure1", racefuzzer_suite::workloads::figure1(), "main"),
            CampaignJob::new(
                "figure2",
                racefuzzer_suite::workloads::figure2(3),
                "main",
            ),
        ]
    };
    let options = CampaignOptions {
        trials_per_pair: 25,
        checkpoint_path: Some(checkpoint.clone()),
        ..CampaignOptions::default()
    };

    // --- 1. Start the campaign, but stop after one pair, as if the
    // process had been killed mid-run. Everything completed so far is in
    // the checkpoint file.
    let first = Campaign::new(
        jobs(),
        CampaignOptions {
            stop_after_pairs: Some(1),
            ..options.clone()
        },
    )
    .run()
    .expect("campaign I/O works");
    assert!(first.interrupted);
    let done_pairs: usize = first.jobs.iter().map(|job| job.reports.len()).sum();
    println!("interrupted after {done_pairs} pair(s); checkpoint at {}", checkpoint.display());

    // --- 2. A fresh Campaign value (fresh process, as far as the driver
    // can tell) resumes from the checkpoint and finishes the rest.
    let resumed = Campaign::new(jobs(), options)
        .run()
        .expect("campaign I/O works");
    assert!(resumed.resumed, "progress was restored from disk");
    assert!(resumed.completed());
    for job in &resumed.jobs {
        println!(
            "{}: {} predicted pair(s), {} real, {} quarantined",
            job.name,
            job.potential.len(),
            job.real_races().len(),
            job.quarantined.len(),
        );
    }

    // --- 3. Failure artifacts. Give Figure 1 an impossible step budget so
    // every trial fails, is retried on a doubled budget, and is finally
    // quarantined — leaving a JSON repro artifact per failing seed.
    let starved = Campaign::new(
        vec![CampaignJob::new(
            "figure1",
            racefuzzer_suite::workloads::figure1(),
            "main",
        )],
        CampaignOptions {
            trials_per_pair: 5,
            fuzz: racefuzzer::FuzzConfig {
                max_steps: 4, // Figure 1 needs far more than 4 statements
                ..racefuzzer::FuzzConfig::default()
            },
            max_attempts: 2,
            max_step_budget: 8,
            artifact_dir: Some(artifacts.clone()),
            ..CampaignOptions::default()
        },
    );
    let report = starved.run().expect("campaign I/O works");
    assert!(report.completed());
    let quarantined = report.quarantine_count();
    println!("\nstarved campaign: {} pair(s) quarantined, {} failure(s) recorded",
        quarantined, report.failure_count());

    // Load one artifact back and replay it deterministically: the replay
    // reproduces the exact recorded failure (here: step-budget exhaustion).
    let artifact_path = std::fs::read_dir(&artifacts)
        .expect("artifact dir exists")
        .next()
        .expect("at least one artifact")
        .expect("dir entry readable")
        .path();
    let artifact = FailureArtifact::load(&artifact_path).expect("artifact parses");
    println!(
        "replaying artifact {} (pair ({}, {}), seed {}, kind {})",
        artifact_path.file_name().unwrap().to_string_lossy(),
        artifact.pair.first(),
        artifact.pair.second(),
        artifact.seed,
        artifact.kind,
    );
    let reproduction = starved
        .reproduce(&artifact)
        .expect("digest matches: same program");
    assert!(reproduction.matches(&artifact), "the failure replays identically");
    println!("reproduced: {}", reproduction.kind.expect("failure reproduced"));

    std::fs::remove_dir_all(&workdir).ok();
}
