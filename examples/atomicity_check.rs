//! Atomicity-violation-directed testing — the paper's §1 generalisation:
//! "we can bias the random scheduler by other potential concurrency
//! problems such as potential atomicity violations".
//!
//! The program below is **data-race free** (every access to `balance`
//! holds the lock), so RaceFuzzer's race mode finds nothing. But the
//! deposit's read and write live in *different* critical sections: a
//! withdraw scheduled into the window is lost. The atomicity pipeline
//! predicts the split region, forces the interleaving, and exposes the
//! lost update.
//!
//! Run with: `cargo run --example atomicity_check`

use racefuzzer_suite::prelude::*;
use racefuzzer_suite::racefuzzer::{analyze_atomicity, fuzz_atomicity_once};

fn main() {
    let program = cil::compile(
        r#"
        class Lock { }
        global l;
        global balance = 100;

        proc deposit_split(amount) {
            var current;
            sync (l) { current = balance; }      // check…
            sync (l) { balance = current + amount; }  // …act (too late!)
        }

        proc withdraw(amount) {
            sync (l) { balance = balance - amount; }
        }

        proc main() {
            l = new Lock;
            var t1 = spawn deposit_split(50);
            var t2 = spawn withdraw(30);
            join t1;
            join t2;
            var final_balance;
            sync (l) { final_balance = balance; }
            assert final_balance == 120 : "an update was lost";
        }
        "#,
    )
    .expect("the example program is valid CIL");

    // Race mode: silent, correctly.
    let races = predict_races(&program, "main", &PredictConfig::with_runs(10))
        .expect("prediction runs");
    println!("data races predicted: {} (all accesses are locked)", races.len());
    assert!(races.is_empty());

    // Atomicity mode: predicts the split region and forces the bug.
    let report = analyze_atomicity(&program, "main", 50, 1, &FuzzConfig::default())
        .expect("analysis runs");
    println!(
        "split-region candidates predicted: {}",
        report.candidates.len()
    );
    for (candidate, pair) in report.candidates.iter().zip(&report.reports) {
        println!(
            "  {}\n    forced in {}/{} trials, lost-update assert fired in {} trials",
            candidate.describe(&program),
            pair.violations,
            pair.trials,
            pair.exception_trials
        );
        if let Some(seed) = pair.first_seed {
            let outcome =
                fuzz_atomicity_once(&program, "main", candidate, &FuzzConfig::seeded(seed))
                    .expect("replay runs");
            println!(
                "    replay seed {seed}: {} violation(s), uncaught {:?}",
                outcome.violations.len(),
                outcome.uncaught_names_for(&program)
            );
        }
    }
    assert!(!report.real_violations().is_empty());
    println!("\nrace-freedom is not atomicity — and the scheduler can prove it.");
}

trait UncaughtNames {
    fn uncaught_names_for<'p>(&self, program: &'p cil::Program) -> Vec<&'p str>;
}

impl UncaughtNames for racefuzzer_suite::racefuzzer::AtomicityOutcome {
    fn uncaught_names_for<'p>(&self, program: &'p cil::Program) -> Vec<&'p str> {
        self.uncaught
            .iter()
            .map(|exception| program.name(exception.name))
            .collect()
    }
}
