//! A compact version of the paper's Figure-2 experiment (§3.2): RaceFuzzer
//! creates a predicted race with probability ~1 no matter how many
//! statements separate the racing accesses, while a plain random scheduler
//! almost never triggers the resulting error once the program grows.
//!
//! Run with: `cargo run --release --example probability_sweep`

use racefuzzer_suite::prelude::*;

fn main() {
    let trials = 200u64;
    println!("pad  RF P(race)  RF P(error)  Simple P(error)");
    for pad in [0usize, 10, 50, 200] {
        let program = racefuzzer_suite::workloads::figure2(pad);
        let pair = RacePair::new(
            program.tagged_access("s8"),
            program.tagged_access("s10"),
        );

        let mut rf_hits = 0u64;
        let mut rf_errors = 0u64;
        for seed in 0..trials {
            let outcome = fuzz_pair_once(&program, "main", pair, &FuzzConfig::seeded(seed))
                .expect("fuzz runs");
            rf_hits += u64::from(outcome.race_created());
            rf_errors += u64::from(!outcome.uncaught.is_empty());
        }

        let mut simple_errors = 0u64;
        for seed in 0..trials {
            let outcome = run_with(
                &program,
                "main",
                &mut RandomScheduler::seeded(seed),
                &mut NullObserver,
                Limits::default(),
            )
            .expect("run succeeds");
            simple_errors += u64::from(!outcome.uncaught.is_empty());
        }

        println!(
            "{pad:>3}  {:>10.3}  {:>11.3}  {:>15.3}",
            rf_hits as f64 / trials as f64,
            rf_errors as f64 / trials as f64,
            simple_errors as f64 / trials as f64,
        );
    }
}
