//! Replay-based debugging (paper §2.2: "Deterministic replay is a powerful
//! feature … it allows the user to replay and debug a race condition"):
//! find a harmful race, then render its full execution trace — every
//! scheduled statement, the race-creation point, and the thread death —
//! from nothing but the seed.
//!
//! Run with: `cargo run --example trace_debugging`

use racefuzzer_suite::prelude::*;

fn main() {
    let program = cil::compile(
        r#"
        class Job { input, output }
        global job;

        proc worker() {
            var j = job;
            @read_input var data = j.input;
            var result = data * 2;          // TypeError when input is still null
            j.output = result;
        }

        proc main() {
            var j = new Job;
            job = j;
            var t = spawn worker();
            @write_input j.input = 21;
            join t;
            var out = j.output;
            print out;
        }
        "#,
    )
    .expect("the example program is valid CIL");

    let pair = RacePair::new(
        program.tagged_access("read_input"),
        program.tagged_access("write_input"),
    );

    // Find a seed whose resolution kills the worker.
    let report = fuzz_pair(&program, "main", pair, 50, 1, &FuzzConfig::default())
        .expect("fuzzing runs");
    println!(
        "race created in {}/{} trials; crashes in {} of them",
        report.hits, report.trials, report.exception_trials
    );
    let seed = report
        .first_exception_seed
        .expect("some trial crashes the worker");

    // One seed is the entire bug report: render the trace.
    let trace =
        render_trace(&program, "main", pair, seed).expect("trace renders");
    println!("\n{trace}");
}
